#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/check.h"

namespace fedda::net {

namespace {

using core::Status;

std::string ErrnoText(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec =
      static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) * 1e9);
  // EINTR cuts the sleep short; the retry loop around Connect absorbs it.
  nanosleep(&ts, nullptr);
}

/// Waits until `fd` is readable or `deadline` (monotonic seconds) passes.
/// OK means readable; IoError covers both timeout and poll failure.
Status PollReadable(int fd, double deadline) {
  for (;;) {
    const double remaining = deadline - MonotonicSeconds();
    if (remaining <= 0.0) {
      return Status::IoError("read timed out");
    }
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int timeout_ms =
        static_cast<int>(remaining * 1000.0) + 1;  // round up, never 0
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("poll"));
    }
    if (ready == 0) {
      return Status::IoError("read timed out");
    }
    // POLLHUP/POLLERR fall through to the read, which reports EOF or the
    // socket error precisely.
    return Status::OK();
  }
}

/// Parsed form of an address string.
struct ParsedAddress {
  bool is_unix = false;
  std::string path;       // unix
  std::string host;       // tcp
  uint16_t port = 0;      // tcp
};

Status ParseAddress(const std::string& address, ParsedAddress* out) {
  constexpr char kUnixPrefix[] = "unix:";
  constexpr char kTcpPrefix[] = "tcp:";
  if (address.rfind(kUnixPrefix, 0) == 0) {
    out->is_unix = true;
    out->path = address.substr(sizeof(kUnixPrefix) - 1);
    if (out->path.empty()) {
      return Status::InvalidArgument("empty unix socket path: " + address);
    }
    sockaddr_un probe;
    if (out->path.size() >= sizeof(probe.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     out->path);
    }
    return Status::OK();
  }
  if (address.rfind(kTcpPrefix, 0) == 0) {
    out->is_unix = false;
    const std::string rest = address.substr(sizeof(kTcpPrefix) - 1);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument("expected tcp:<ipv4>:<port>, got " +
                                     address);
    }
    out->host = rest.substr(0, colon);
    long port = 0;
    for (size_t i = colon + 1; i < rest.size(); ++i) {
      const char c = rest[i];
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad port in " + address);
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("port out of range in " + address);
      }
    }
    out->port = static_cast<uint16_t>(port);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "address must start with unix: or tcp:, got " + address);
}

Status FillSockaddr(const ParsedAddress& parsed, sockaddr_storage* storage,
                    socklen_t* len) {
  std::memset(storage, 0, sizeof(*storage));
  if (parsed.is_unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    sun->sun_family = AF_UNIX;
    std::memcpy(sun->sun_path, parsed.path.c_str(), parsed.path.size() + 1);
    *len = static_cast<socklen_t>(sizeof(sockaddr_un));
    return Status::OK();
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(parsed.port);
  if (inet_pton(AF_INET, parsed.host.c_str(), &sin->sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " +
                                   parsed.host);
  }
  *len = static_cast<socklen_t>(sizeof(sockaddr_in));
  return Status::OK();
}

}  // namespace

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    // Failure here is unreportable (and close must not be retried on
    // EINTR: the fd is gone either way on Linux).
    close(fd_);
    fd_ = -1;
  }
}

Status Socket::WriteAll(const void* data, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("write on closed socket");
  const auto* cursor = static_cast<const uint8_t*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    const ssize_t n = send(fd_, cursor, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("send"));
    }
    // send() never legitimately returns 0 for blocking stream sockets with
    // remaining > 0, so every iteration makes progress.
    cursor += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::ReadAll(void* data, size_t len, double timeout_sec) {
  if (fd_ < 0) return Status::FailedPrecondition("read on closed socket");
  const double deadline = MonotonicSeconds() + timeout_sec;
  auto* cursor = static_cast<uint8_t*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    FEDDA_RETURN_IF_ERROR(PollReadable(fd_, deadline));
    const ssize_t n = recv(fd_, cursor, remaining, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("recv"));
    }
    if (n == 0) {
      return Status::IoError("peer closed the connection mid-read");
    }
    cursor += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::ReadSome(void* data, size_t capacity, size_t* n) {
  if (fd_ < 0) return Status::FailedPrecondition("read on closed socket");
  for (;;) {
    const ssize_t got = recv(fd_, data, capacity, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("recv"));
    }
    *n = static_cast<size_t>(got);
    return Status::OK();
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), address_(std::move(other.address_)),
      uds_path_(std::move(other.uds_path_)) {
  other.fd_ = -1;
  other.uds_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    address_ = std::move(other.address_);
    uds_path_ = std::move(other.uds_path_);
    other.fd_ = -1;
    other.uds_path_.clear();
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  if (!uds_path_.empty()) {
    unlink(uds_path_.c_str());
    uds_path_.clear();
  }
}

Status Listener::Listen(const std::string& address, Listener* out) {
  ParsedAddress parsed;
  FEDDA_RETURN_IF_ERROR(ParseAddress(address, &parsed));
  const int fd =
      socket(parsed.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoText("socket"));
  Socket guard(fd);  // closes on every early return below

  if (parsed.is_unix) {
    // A socket file left behind by a crashed server would make bind fail
    // with EADDRINUSE forever; live servers are distinguished by the
    // connect-time refusal, not the file's existence.
    unlink(parsed.path.c_str());
  } else {
    const int enable = 1;
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable,
                   sizeof(enable)) != 0) {
      return Status::IoError(ErrnoText("setsockopt(SO_REUSEADDR)"));
    }
  }

  sockaddr_storage storage;
  socklen_t len = 0;
  FEDDA_RETURN_IF_ERROR(FillSockaddr(parsed, &storage, &len));
  if (bind(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0) {
    return Status::IoError(ErrnoText("bind"));
  }
  if (listen(fd, SOMAXCONN) != 0) {
    return Status::IoError(ErrnoText("listen"));
  }

  std::string resolved = address;
  if (!parsed.is_unix && parsed.port == 0) {
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
        0) {
      return Status::IoError(ErrnoText("getsockname"));
    }
    resolved =
        "tcp:" + parsed.host + ":" + std::to_string(ntohs(bound.sin_port));
  }

  out->Close();
  out->fd_ = guard.ReleaseFd();
  out->address_ = resolved;
  out->uds_path_ = parsed.is_unix ? parsed.path : std::string();
  return Status::OK();
}

Status Listener::Accept(double timeout_sec, Socket* out) {
  if (fd_ < 0) return Status::FailedPrecondition("accept on closed listener");
  const double deadline = MonotonicSeconds() + timeout_sec;
  FEDDA_RETURN_IF_ERROR(PollReadable(fd_, deadline));
  for (;;) {
    const int conn = accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("accept"));
    }
    *out = Socket(conn);
    return Status::OK();
  }
}

Status Connect(const std::string& address, int retries, double backoff_sec,
               Socket* out) {
  ParsedAddress parsed;
  FEDDA_RETURN_IF_ERROR(ParseAddress(address, &parsed));
  sockaddr_storage storage;
  socklen_t len = 0;
  FEDDA_RETURN_IF_ERROR(FillSockaddr(parsed, &storage, &len));

  Status last = Status::IoError("connect never attempted");
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) SleepSeconds(backoff_sec * attempt);
    const int fd =
        socket(parsed.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError(ErrnoText("socket"));
    Socket candidate(fd);
    // EINTR on a blocking connect leaves the attempt completing in the
    // background; re-calling connect on the same fd is undefined-ish
    // (EALREADY/EISCONN). Treat it as a failed attempt and retry on a
    // fresh socket instead.
    if (connect(fd, reinterpret_cast<sockaddr*>(&storage), len) == 0) {
      *out = std::move(candidate);
      return Status::OK();
    }
    last = Status::IoError(ErrnoText("connect") + " (" + address + ")");
  }
  return last;
}

}  // namespace fedda::net
