#ifndef FEDDA_GRAPH_STATS_H_
#define FEDDA_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/hetero_graph.h"

namespace fedda::graph {

/// Summary statistics matching the paper's Table 1 columns.
struct GraphStats {
  int64_t num_nodes = 0;
  int num_node_types = 0;
  int64_t num_edges = 0;
  int num_edge_types = 0;
  double density = 0.0;  // num_edges / num_nodes^2
  std::vector<int64_t> nodes_per_type;
  std::vector<int64_t> edges_per_type;
};

GraphStats ComputeStats(const HeteroGraph& graph);

/// Multi-line human-readable rendering with per-type breakdowns.
std::string StatsToString(const HeteroGraph& graph, const GraphStats& stats);

}  // namespace fedda::graph

#endif  // FEDDA_GRAPH_STATS_H_
