#include "graph/stats.h"

#include "core/string_util.h"

namespace fedda::graph {

GraphStats ComputeStats(const HeteroGraph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_node_types = graph.num_node_types();
  stats.num_edges = graph.num_edges();
  stats.num_edge_types = graph.num_edge_types();
  stats.density = graph.Density();
  for (NodeTypeId t = 0; t < graph.num_node_types(); ++t) {
    stats.nodes_per_type.push_back(graph.num_nodes_of_type(t));
  }
  stats.edges_per_type = graph.EdgeTypeCounts();
  return stats;
}

std::string StatsToString(const HeteroGraph& graph, const GraphStats& stats) {
  std::string out = core::StrFormat(
      "nodes=%s (%d types), edges=%s (%d types), density=%.4f%%\n",
      core::FormatWithCommas(stats.num_nodes).c_str(), stats.num_node_types,
      core::FormatWithCommas(stats.num_edges).c_str(), stats.num_edge_types,
      stats.density * 100.0);
  for (NodeTypeId t = 0; t < graph.num_node_types(); ++t) {
    out += core::StrFormat(
        "  node type %-12s : %s nodes (feature dim %lld)\n",
        graph.node_type_info(t).name.c_str(),
        core::FormatWithCommas(stats.nodes_per_type[static_cast<size_t>(t)])
            .c_str(),
        static_cast<long long>(graph.node_type_info(t).feature_dim));
  }
  for (EdgeTypeId t = 0; t < graph.num_edge_types(); ++t) {
    const EdgeTypeInfo& info = graph.edge_type_info(t);
    out += core::StrFormat(
        "  edge type %-12s : %s edges (%s -- %s)\n", info.name.c_str(),
        core::FormatWithCommas(stats.edges_per_type[static_cast<size_t>(t)])
            .c_str(),
        graph.node_type_info(info.src_type).name.c_str(),
        graph.node_type_info(info.dst_type).name.c_str());
  }
  return out;
}

}  // namespace fedda::graph
