#ifndef FEDDA_GRAPH_HETERO_GRAPH_H_
#define FEDDA_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedda::graph {

using NodeId = int32_t;
using EdgeId = int64_t;
using NodeTypeId = int16_t;
using EdgeTypeId = int16_t;

/// Schema entry for one node type.
struct NodeTypeInfo {
  std::string name;
  int64_t feature_dim = 0;
};

/// Schema entry for one edge (link) type: endpoints are node types. All edge
/// types in this work are undirected relations stored once per edge; message
/// passing symmetrizes them (see hgn/simple_hgn.h).
struct EdgeTypeInfo {
  std::string name;
  NodeTypeId src_type = 0;
  NodeTypeId dst_type = 0;
};

class HeteroGraphBuilder;

/// Immutable heterogeneous graph: multi-typed nodes with per-type feature
/// matrices and multi-typed edges, following the paper's
/// H = {V, E, phi, psi, X} formulation.
///
/// Node ids are global (0..num_nodes) and shared across every subgraph built
/// from the same global graph (`SubgraphFromEdges`), which is what lets
/// federated clients hold aligned models without exchanging raw data. Feature
/// matrices are shared (refcounted) between a graph and its subgraphs.
class HeteroGraph {
 public:
  HeteroGraph() = default;

  // -- Schema ---------------------------------------------------------------
  int num_node_types() const { return static_cast<int>(node_types_.size()); }
  int num_edge_types() const { return static_cast<int>(edge_types_.size()); }
  const NodeTypeInfo& node_type_info(NodeTypeId t) const;
  const EdgeTypeInfo& edge_type_info(EdgeTypeId t) const;

  // -- Nodes ----------------------------------------------------------------
  int64_t num_nodes() const { return static_cast<int64_t>(node_type_.size()); }
  NodeTypeId node_type(NodeId v) const;
  /// Index of `v` within its type's feature matrix.
  int64_t type_local_index(NodeId v) const;
  /// Number of nodes of type `t`.
  int64_t num_nodes_of_type(NodeTypeId t) const;
  /// Global ids of all nodes of type `t` (ascending).
  const std::vector<NodeId>& nodes_of_type(NodeTypeId t) const;
  /// Feature matrix of node type `t`: (num_nodes_of_type(t) x feature_dim).
  const tensor::Tensor& features(NodeTypeId t) const;

  // -- Edges ----------------------------------------------------------------
  int64_t num_edges() const { return static_cast<int64_t>(edge_src_.size()); }
  NodeId edge_src(EdgeId e) const { return edge_src_[CheckEdge(e)]; }
  NodeId edge_dst(EdgeId e) const { return edge_dst_[CheckEdge(e)]; }
  EdgeTypeId edge_type(EdgeId e) const { return edge_etype_[CheckEdge(e)]; }
  const std::vector<NodeId>& edge_srcs() const { return edge_src_; }
  const std::vector<NodeId>& edge_dsts() const { return edge_dst_; }
  const std::vector<EdgeTypeId>& edge_types() const { return edge_etype_; }

  /// Edge ids of the given type.
  std::vector<EdgeId> EdgesOfType(EdgeTypeId t) const;
  /// Number of edges per type (size num_edge_types()).
  std::vector<int64_t> EdgeTypeCounts() const;
  /// Empirical edge-type distribution P(psi(e)) (sums to 1; all zeros for an
  /// edgeless graph). This is the P_i whose divergence across clients defines
  /// the paper's Non-IID setting.
  std::vector<double> EdgeTypeDistribution() const;

  /// Out-neighbors of `v` under the symmetrized view (each stored edge
  /// contributes both directions). Returns (neighbor, edge id) pairs.
  struct Neighbor {
    NodeId node;
    EdgeId edge;
  };
  const std::vector<Neighbor>& neighbors(NodeId v) const;

  /// True if an edge of type `t` exists between u and v in either direction.
  bool HasEdge(NodeId u, NodeId v, EdgeTypeId t) const;

  /// Graph with the same schema/nodes/features but only `edge_ids` edges.
  HeteroGraph SubgraphFromEdges(const std::vector<EdgeId>& edge_ids) const;

  /// Density per the paper's Table 1: num_edges / num_nodes^2.
  double Density() const;

 private:
  friend class HeteroGraphBuilder;

  size_t CheckEdge(EdgeId e) const {
    FEDDA_CHECK(e >= 0 && e < num_edges()) << "edge id out of range";
    return static_cast<size_t>(e);
  }

  void BuildAdjacency();

  std::vector<NodeTypeInfo> node_types_;
  std::vector<EdgeTypeInfo> edge_types_;

  std::vector<NodeTypeId> node_type_;
  std::vector<int64_t> type_local_index_;
  std::vector<std::vector<NodeId>> nodes_by_type_;
  std::shared_ptr<const std::vector<tensor::Tensor>> features_;

  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<EdgeTypeId> edge_etype_;

  std::vector<std::vector<Neighbor>> adjacency_;
};

/// Incremental constructor for HeteroGraph.
class HeteroGraphBuilder {
 public:
  HeteroGraphBuilder() = default;

  /// Declares a node type; returns its id.
  NodeTypeId AddNodeType(const std::string& name, int64_t feature_dim);
  /// Declares an edge type between two declared node types; returns its id.
  EdgeTypeId AddEdgeType(const std::string& name, NodeTypeId src_type,
                         NodeTypeId dst_type);

  /// Adds one node of type `t`; returns its global id.
  NodeId AddNode(NodeTypeId t);
  /// Adds `count` nodes of type `t`; returns the first global id.
  NodeId AddNodes(NodeTypeId t, int64_t count);

  /// Adds an edge; endpoint types must match the edge type's schema.
  EdgeId AddEdge(NodeId u, NodeId v, EdgeTypeId t);

  /// Sets the feature matrix for node type `t`. Must be
  /// (num nodes of type t) x (declared feature_dim); call after all AddNode
  /// calls for that type.
  void SetFeatures(NodeTypeId t, tensor::Tensor features);

  int64_t num_nodes() const { return static_cast<int64_t>(node_type_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edge_src_.size()); }

  /// Validates and produces the immutable graph. Node types without
  /// explicitly set features get zero feature matrices.
  HeteroGraph Build();

 private:
  std::vector<NodeTypeInfo> node_types_;
  std::vector<EdgeTypeInfo> edge_types_;
  std::vector<NodeTypeId> node_type_;
  std::vector<int64_t> type_counts_;
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<EdgeTypeId> edge_etype_;
  std::vector<tensor::Tensor> features_;
  std::vector<bool> features_set_;
};

}  // namespace fedda::graph

#endif  // FEDDA_GRAPH_HETERO_GRAPH_H_
