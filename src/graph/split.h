#ifndef FEDDA_GRAPH_SPLIT_H_
#define FEDDA_GRAPH_SPLIT_H_

#include <vector>

#include "core/rng.h"
#include "graph/hetero_graph.h"

namespace fedda::graph {

/// Train/test partition of a graph's edge ids.
struct EdgeSplit {
  std::vector<EdgeId> train;
  std::vector<EdgeId> test;
};

/// Randomly splits edges into train/test. With `stratified` (default) the
/// split is performed per edge type so every type appears in the test set
/// with the same fraction — the paper's global test covers all link types.
EdgeSplit SplitEdges(const HeteroGraph& graph, double test_fraction,
                     core::Rng* rng, bool stratified = true);

}  // namespace fedda::graph

#endif  // FEDDA_GRAPH_SPLIT_H_
