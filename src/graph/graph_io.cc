#include "graph/graph_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

#include "core/binary_io.h"
#include "core/string_util.h"

namespace fedda::graph {

namespace {
constexpr uint32_t kMagic = 0xF3DDA6F2;
constexpr uint32_t kVersion = 1;
}  // namespace

core::Status SaveGraph(const HeteroGraph& graph, const std::string& path) {
  core::BinaryWriter writer;
  FEDDA_RETURN_IF_ERROR(writer.Open(path));
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);

  writer.WriteU32(static_cast<uint32_t>(graph.num_node_types()));
  for (NodeTypeId t = 0; t < graph.num_node_types(); ++t) {
    const NodeTypeInfo& info = graph.node_type_info(t);
    writer.WriteString(info.name);
    writer.WriteI64(info.feature_dim);
    writer.WriteI64(graph.num_nodes_of_type(t));
    writer.WriteFloats(graph.features(t).vec());
  }

  writer.WriteU32(static_cast<uint32_t>(graph.num_edge_types()));
  for (EdgeTypeId t = 0; t < graph.num_edge_types(); ++t) {
    const EdgeTypeInfo& info = graph.edge_type_info(t);
    writer.WriteString(info.name);
    writer.WriteU32(static_cast<uint32_t>(info.src_type));
    writer.WriteU32(static_cast<uint32_t>(info.dst_type));
  }

  // Node type of every global id (preserves interleavings).
  writer.WriteI64(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    writer.WriteU32(static_cast<uint32_t>(graph.node_type(v)));
  }

  writer.WriteI64(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    writer.WriteU32(static_cast<uint32_t>(graph.edge_src(e)));
    writer.WriteU32(static_cast<uint32_t>(graph.edge_dst(e)));
    writer.WriteU32(static_cast<uint32_t>(graph.edge_type(e)));
  }
  return writer.Close();
}

core::Status LoadGraph(const std::string& path, HeteroGraph* graph) {
  core::BinaryReader reader;
  FEDDA_RETURN_IF_ERROR(reader.Open(path));
  if (reader.ReadU32() != kMagic) {
    return core::Status::InvalidArgument("not a FedDA graph file: " + path);
  }
  if (reader.ReadU32() != kVersion) {
    return core::Status::InvalidArgument("unsupported graph file version");
  }

  HeteroGraphBuilder builder;
  const uint32_t num_node_types = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  std::vector<tensor::Tensor> features;
  std::vector<int64_t> type_counts;
  for (uint32_t t = 0; t < num_node_types; ++t) {
    const std::string name = reader.ReadString();
    const int64_t dim = reader.ReadI64();
    const int64_t count = reader.ReadI64();
    if (!reader.status().ok()) return reader.status();
    if (dim < 0 || count < 0) {
      return core::Status::InvalidArgument("corrupt node type block");
    }
    // Bound dim*count against the bytes actually left before multiplying:
    // two plausible-looking halves can overflow int64 (UB) or demand an
    // allocation far beyond the file. kMaxFrameBody-style policy: reject
    // before reserve/resize, never after.
    if (dim > 0 &&
        count > static_cast<int64_t>(reader.remaining() / sizeof(float) /
                                     static_cast<uint64_t>(dim))) {
      return core::Status::InvalidArgument(
          "node feature block exceeds file");
    }
    builder.AddNodeType(name, dim);
    std::vector<float> values =
        reader.ReadFloats(static_cast<size_t>(dim * count));
    if (!reader.status().ok()) return reader.status();
    features.push_back(
        tensor::Tensor::FromVector(count, dim, std::move(values)));
    type_counts.push_back(count);
  }

  const uint32_t num_edge_types = reader.ReadU32();
  std::vector<std::pair<uint32_t, uint32_t>> edge_endpoints;
  for (uint32_t t = 0; t < num_edge_types; ++t) {
    const std::string name = reader.ReadString();
    const uint32_t src = reader.ReadU32();
    const uint32_t dst = reader.ReadU32();
    if (!reader.status().ok()) return reader.status();
    if (src >= num_node_types || dst >= num_node_types) {
      return core::Status::InvalidArgument("edge type references bad node type");
    }
    builder.AddEdgeType(name, static_cast<NodeTypeId>(src),
                        static_cast<NodeTypeId>(dst));
    edge_endpoints.emplace_back(src, dst);
  }

  const int64_t num_nodes = reader.ReadI64();
  if (!reader.status().ok() || num_nodes < 0) {
    return core::Status::InvalidArgument("corrupt node count");
  }
  if (num_nodes > static_cast<int64_t>(reader.remaining() /
                                       sizeof(uint32_t))) {
    return core::Status::InvalidArgument("node records exceed file");
  }
  std::vector<int64_t> seen(num_node_types, 0);
  std::vector<uint32_t> node_types;
  node_types.reserve(static_cast<size_t>(num_nodes));
  for (int64_t v = 0; v < num_nodes; ++v) {
    const uint32_t t = reader.ReadU32();
    if (!reader.status().ok()) return reader.status();
    if (t >= num_node_types) {
      return core::Status::InvalidArgument("node references bad type");
    }
    builder.AddNode(static_cast<NodeTypeId>(t));
    ++seen[t];
    node_types.push_back(t);
  }
  for (uint32_t t = 0; t < num_node_types; ++t) {
    if (seen[t] != type_counts[t]) {
      return core::Status::InvalidArgument("node count mismatch for type");
    }
    builder.SetFeatures(static_cast<NodeTypeId>(t),
                        std::move(features[t]));
  }

  const int64_t num_edges = reader.ReadI64();
  if (!reader.status().ok() || num_edges < 0) {
    return core::Status::InvalidArgument("corrupt edge count");
  }
  if (num_edges > static_cast<int64_t>(reader.remaining() /
                                       (3 * sizeof(uint32_t)))) {
    return core::Status::InvalidArgument("edge records exceed file");
  }
  for (int64_t e = 0; e < num_edges; ++e) {
    const uint32_t u = reader.ReadU32();
    const uint32_t v = reader.ReadU32();
    const uint32_t t = reader.ReadU32();
    if (!reader.status().ok()) return reader.status();
    if (u >= static_cast<uint32_t>(num_nodes) ||
        v >= static_cast<uint32_t>(num_nodes) || t >= num_edge_types) {
      return core::Status::InvalidArgument("corrupt edge record");
    }
    // The builder CHECKs endpoint/type consistency (programmer contract);
    // from file bytes that contract must fail as a Status, not an abort.
    if (node_types[u] != edge_endpoints[t].first ||
        node_types[v] != edge_endpoints[t].second) {
      return core::Status::InvalidArgument(
          "edge endpoints do not match edge type");
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v),
                    static_cast<EdgeTypeId>(t));
  }
  if (!reader.AtEof()) {
    return core::Status::InvalidArgument("trailing bytes in graph file");
  }
  *graph = builder.Build();
  return core::Status::OK();
}

core::Status LoadGraphFromTsv(const std::string& nodes_path,
                              const std::string& edges_path,
                              HeteroGraph* graph) {
  std::ifstream nodes_in(nodes_path);
  if (!nodes_in.is_open()) {
    return core::Status::IoError("cannot open nodes file: " + nodes_path);
  }

  // Pass 1: nodes. Types are declared on first use; features collected
  // per type in file order (which is also type-local order).
  HeteroGraphBuilder builder;
  std::map<std::string, NodeTypeId> node_type_ids;
  std::vector<int64_t> feature_dims;
  std::vector<std::vector<float>> feature_values;
  std::vector<NodeTypeId> pending_types;  // type of global node i
  std::string line;
  int64_t line_number = 0;
  while (std::getline(nodes_in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = core::Split(line, '\t');
    const std::string& type_name = fields[0];
    const int64_t dim = static_cast<int64_t>(fields.size()) - 1;
    auto it = node_type_ids.find(type_name);
    NodeTypeId type_id;
    if (it == node_type_ids.end()) {
      type_id = static_cast<NodeTypeId>(node_type_ids.size());
      node_type_ids.emplace(type_name, type_id);
      feature_dims.push_back(dim);
      feature_values.emplace_back();
    } else {
      type_id = it->second;
      if (feature_dims[static_cast<size_t>(type_id)] != dim) {
        return core::Status::InvalidArgument(core::StrFormat(
            "%s:%lld: feature count %lld != %lld for type '%s'",
            nodes_path.c_str(), static_cast<long long>(line_number),
            static_cast<long long>(dim),
            static_cast<long long>(feature_dims[static_cast<size_t>(type_id)]),
            type_name.c_str()));
      }
    }
    for (size_t f = 1; f < fields.size(); ++f) {
      char* end = nullptr;
      const float value = std::strtof(fields[f].c_str(), &end);
      if (end == fields[f].c_str() || *end != '\0') {
        return core::Status::InvalidArgument(core::StrFormat(
            "%s:%lld: bad feature value '%s'", nodes_path.c_str(),
            static_cast<long long>(line_number), fields[f].c_str()));
      }
      feature_values[static_cast<size_t>(type_id)].push_back(value);
    }
    pending_types.push_back(type_id);
  }
  // Declare types in id order, then nodes in file order.
  std::vector<std::string> names_by_id(node_type_ids.size());
  for (const auto& [name, id] : node_type_ids) {
    names_by_id[static_cast<size_t>(id)] = name;
  }
  for (size_t t = 0; t < names_by_id.size(); ++t) {
    builder.AddNodeType(names_by_id[t], feature_dims[t]);
  }
  for (NodeTypeId t : pending_types) builder.AddNode(t);
  for (size_t t = 0; t < names_by_id.size(); ++t) {
    const int64_t dim = feature_dims[t];
    const int64_t count =
        dim == 0 ? static_cast<int64_t>(
                       std::count(pending_types.begin(), pending_types.end(),
                                  static_cast<NodeTypeId>(t)))
                 : static_cast<int64_t>(feature_values[t].size()) / dim;
    builder.SetFeatures(static_cast<NodeTypeId>(t),
                        tensor::Tensor::FromVector(
                            count, dim, std::move(feature_values[t])));
  }

  // Pass 2: edges.
  std::ifstream edges_in(edges_path);
  if (!edges_in.is_open()) {
    return core::Status::IoError("cannot open edges file: " + edges_path);
  }
  std::map<std::string, EdgeTypeId> edge_type_ids;
  std::vector<std::pair<NodeTypeId, NodeTypeId>> edge_endpoints;
  line_number = 0;
  while (std::getline(edges_in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = core::Split(line, '\t');
    if (fields.size() != 3) {
      return core::Status::InvalidArgument(core::StrFormat(
          "%s:%lld: expected 'type<TAB>src<TAB>dst'", edges_path.c_str(),
          static_cast<long long>(line_number)));
    }
    char* end = nullptr;
    const long u = std::strtol(fields[1].c_str(), &end, 10);
    if (end == fields[1].c_str() || *end != '\0') {
      return core::Status::InvalidArgument("bad src id: " + fields[1]);
    }
    const long v = std::strtol(fields[2].c_str(), &end, 10);
    if (end == fields[2].c_str() || *end != '\0') {
      return core::Status::InvalidArgument("bad dst id: " + fields[2]);
    }
    if (u < 0 || v < 0 || u >= builder.num_nodes() ||
        v >= builder.num_nodes()) {
      return core::Status::OutOfRange(core::StrFormat(
          "%s:%lld: node id out of range", edges_path.c_str(),
          static_cast<long long>(line_number)));
    }
    const NodeTypeId src_type = pending_types[static_cast<size_t>(u)];
    const NodeTypeId dst_type = pending_types[static_cast<size_t>(v)];
    auto it = edge_type_ids.find(fields[0]);
    EdgeTypeId type_id;
    if (it == edge_type_ids.end()) {
      type_id = builder.AddEdgeType(fields[0], src_type, dst_type);
      edge_type_ids.emplace(fields[0], type_id);
      edge_endpoints.emplace_back(src_type, dst_type);
    } else {
      type_id = it->second;
      const auto& expected = edge_endpoints[static_cast<size_t>(type_id)];
      if (expected.first != src_type || expected.second != dst_type) {
        return core::Status::InvalidArgument(core::StrFormat(
            "%s:%lld: edge type '%s' endpoint node types differ from its "
            "first use",
            edges_path.c_str(), static_cast<long long>(line_number),
            fields[0].c_str()));
      }
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), type_id);
  }

  *graph = builder.Build();
  return core::Status::OK();
}

}  // namespace fedda::graph
