#ifndef FEDDA_GRAPH_GRAPH_IO_H_
#define FEDDA_GRAPH_GRAPH_IO_H_

#include <string>

#include "core/status.h"
#include "graph/hetero_graph.h"

namespace fedda::graph {

/// Persists a heterograph (schema, nodes, features, edges) to a compact
/// binary file, so an expensive synthesis or external import can be reused
/// across runs.
[[nodiscard]] core::Status SaveGraph(const HeteroGraph& graph, const std::string& path);

/// Loads a graph written by SaveGraph.
[[nodiscard]] core::Status LoadGraph(const std::string& path, HeteroGraph* graph);

/// Imports a heterograph from two tab-separated text files — the adoption
/// path for real datasets.
///
/// `nodes_path` lines:  node_type_name<TAB>feature_0<TAB>...<TAB>feature_k
///   Nodes are numbered 0..N-1 in file order; every line of one type must
///   carry the same number of features (the type's feature dim, possibly 0).
/// `edges_path` lines:  edge_type_name<TAB>src_id<TAB>dst_id
///   Edge types are declared on first use; their endpoint node types are
///   fixed by the first edge and validated on every subsequent one.
/// Lines starting with '#' and blank lines are ignored in both files.
[[nodiscard]] core::Status LoadGraphFromTsv(const std::string& nodes_path,
                                            const std::string& edges_path,
                                            HeteroGraph* graph);

}  // namespace fedda::graph

#endif  // FEDDA_GRAPH_GRAPH_IO_H_
