#include "graph/sampling.h"

namespace fedda::graph {

NegativeSampler::NegativeSampler(const HeteroGraph* graph, int max_tries)
    : graph_(graph), max_tries_(max_tries) {
  FEDDA_CHECK(graph != nullptr);
  FEDDA_CHECK_GT(max_tries, 0);
}

NodeId NegativeSampler::CorruptDst(NodeId u, NodeId v, EdgeTypeId t,
                                   core::Rng* rng) const {
  const NodeTypeId dst_type = graph_->edge_type_info(t).dst_type;
  const std::vector<NodeId>& pool = graph_->nodes_of_type(dst_type);
  FEDDA_CHECK_GT(pool.size(), 1u)
      << "cannot sample negatives: node type has <= 1 node";
  NodeId candidate = v;
  for (int attempt = 0; attempt < max_tries_; ++attempt) {
    candidate = pool[rng->UniformInt(static_cast<uint64_t>(pool.size()))];
    if (candidate != v && !graph_->HasEdge(u, candidate, t)) return candidate;
  }
  return candidate;
}

std::vector<NodeId> NegativeSampler::SampleNegatives(NodeId u, NodeId v,
                                                     EdgeTypeId t, int count,
                                                     core::Rng* rng) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(CorruptDst(u, v, t, rng));
  return out;
}

std::vector<std::vector<EdgeId>> MakeBatches(std::vector<EdgeId> edge_ids,
                                             int64_t batch_size,
                                             core::Rng* rng) {
  rng->Shuffle(&edge_ids);
  std::vector<std::vector<EdgeId>> batches;
  if (edge_ids.empty()) return batches;
  if (batch_size <= 0) {
    batches.push_back(std::move(edge_ids));
    return batches;
  }
  for (size_t start = 0; start < edge_ids.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(edge_ids.size(), start + static_cast<size_t>(batch_size));
    batches.emplace_back(edge_ids.begin() + static_cast<long>(start),
                         edge_ids.begin() + static_cast<long>(end));
  }
  return batches;
}

}  // namespace fedda::graph
