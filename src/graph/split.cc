#include "graph/split.h"

#include <algorithm>

namespace fedda::graph {

namespace {

void SplitIds(std::vector<EdgeId> ids, double test_fraction, core::Rng* rng,
              EdgeSplit* out) {
  rng->Shuffle(&ids);
  const size_t num_test = static_cast<size_t>(
      test_fraction * static_cast<double>(ids.size()) + 0.5);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i < num_test) {
      out->test.push_back(ids[i]);
    } else {
      out->train.push_back(ids[i]);
    }
  }
}

}  // namespace

EdgeSplit SplitEdges(const HeteroGraph& graph, double test_fraction,
                     core::Rng* rng, bool stratified) {
  FEDDA_CHECK(test_fraction >= 0.0 && test_fraction < 1.0);
  EdgeSplit split;
  if (stratified) {
    for (EdgeTypeId t = 0; t < graph.num_edge_types(); ++t) {
      SplitIds(graph.EdgesOfType(t), test_fraction, rng, &split);
    }
  } else {
    std::vector<EdgeId> all(static_cast<size_t>(graph.num_edges()));
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      all[static_cast<size_t>(e)] = e;
    }
    SplitIds(std::move(all), test_fraction, rng, &split);
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace fedda::graph
