#include "graph/hetero_graph.h"

#include <algorithm>

namespace fedda::graph {

const NodeTypeInfo& HeteroGraph::node_type_info(NodeTypeId t) const {
  FEDDA_CHECK(t >= 0 && t < num_node_types());
  return node_types_[static_cast<size_t>(t)];
}

const EdgeTypeInfo& HeteroGraph::edge_type_info(EdgeTypeId t) const {
  FEDDA_CHECK(t >= 0 && t < num_edge_types());
  return edge_types_[static_cast<size_t>(t)];
}

NodeTypeId HeteroGraph::node_type(NodeId v) const {
  FEDDA_CHECK(v >= 0 && v < num_nodes()) << "node id out of range";
  return node_type_[static_cast<size_t>(v)];
}

int64_t HeteroGraph::type_local_index(NodeId v) const {
  FEDDA_CHECK(v >= 0 && v < num_nodes()) << "node id out of range";
  return type_local_index_[static_cast<size_t>(v)];
}

int64_t HeteroGraph::num_nodes_of_type(NodeTypeId t) const {
  return static_cast<int64_t>(nodes_of_type(t).size());
}

const std::vector<NodeId>& HeteroGraph::nodes_of_type(NodeTypeId t) const {
  FEDDA_CHECK(t >= 0 && t < num_node_types());
  return nodes_by_type_[static_cast<size_t>(t)];
}

const tensor::Tensor& HeteroGraph::features(NodeTypeId t) const {
  FEDDA_CHECK(t >= 0 && t < num_node_types());
  FEDDA_CHECK(features_ != nullptr);
  return (*features_)[static_cast<size_t>(t)];
}

std::vector<EdgeId> HeteroGraph::EdgesOfType(EdgeTypeId t) const {
  FEDDA_CHECK(t >= 0 && t < num_edge_types());
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (edge_etype_[static_cast<size_t>(e)] == t) out.push_back(e);
  }
  return out;
}

std::vector<int64_t> HeteroGraph::EdgeTypeCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(num_edge_types()), 0);
  for (EdgeTypeId t : edge_etype_) counts[static_cast<size_t>(t)]++;
  return counts;
}

std::vector<double> HeteroGraph::EdgeTypeDistribution() const {
  std::vector<double> dist(static_cast<size_t>(num_edge_types()), 0.0);
  if (num_edges() == 0) return dist;
  for (EdgeTypeId t : edge_etype_) dist[static_cast<size_t>(t)] += 1.0;
  for (auto& d : dist) d /= static_cast<double>(num_edges());
  return dist;
}

const std::vector<HeteroGraph::Neighbor>& HeteroGraph::neighbors(
    NodeId v) const {
  FEDDA_CHECK(v >= 0 && v < num_nodes()) << "node id out of range";
  return adjacency_[static_cast<size_t>(v)];
}

bool HeteroGraph::HasEdge(NodeId u, NodeId v, EdgeTypeId t) const {
  for (const Neighbor& n : neighbors(u)) {
    if (n.node == v && edge_type(n.edge) == t) return true;
  }
  return false;
}

HeteroGraph HeteroGraph::SubgraphFromEdges(
    const std::vector<EdgeId>& edge_ids) const {
  HeteroGraph sub;
  sub.node_types_ = node_types_;
  sub.edge_types_ = edge_types_;
  sub.node_type_ = node_type_;
  sub.type_local_index_ = type_local_index_;
  sub.nodes_by_type_ = nodes_by_type_;
  sub.features_ = features_;  // shared, immutable
  sub.edge_src_.reserve(edge_ids.size());
  sub.edge_dst_.reserve(edge_ids.size());
  sub.edge_etype_.reserve(edge_ids.size());
  for (EdgeId e : edge_ids) {
    const size_t i = CheckEdge(e);
    sub.edge_src_.push_back(edge_src_[i]);
    sub.edge_dst_.push_back(edge_dst_[i]);
    sub.edge_etype_.push_back(edge_etype_[i]);
  }
  sub.BuildAdjacency();
  return sub;
}

double HeteroGraph::Density() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(num_edges()) /
         (static_cast<double>(num_nodes()) * static_cast<double>(num_nodes()));
}

void HeteroGraph::BuildAdjacency() {
  adjacency_.assign(static_cast<size_t>(num_nodes()), {});
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const size_t i = static_cast<size_t>(e);
    const NodeId u = edge_src_[i], v = edge_dst_[i];
    adjacency_[static_cast<size_t>(u)].push_back(Neighbor{v, e});
    if (u != v) adjacency_[static_cast<size_t>(v)].push_back(Neighbor{u, e});
  }
}

NodeTypeId HeteroGraphBuilder::AddNodeType(const std::string& name,
                                           int64_t feature_dim) {
  FEDDA_CHECK_GE(feature_dim, 0);
  node_types_.push_back(NodeTypeInfo{name, feature_dim});
  type_counts_.push_back(0);
  features_.emplace_back();
  features_set_.push_back(false);
  return static_cast<NodeTypeId>(node_types_.size() - 1);
}

EdgeTypeId HeteroGraphBuilder::AddEdgeType(const std::string& name,
                                           NodeTypeId src_type,
                                           NodeTypeId dst_type) {
  FEDDA_CHECK(src_type >= 0 &&
              src_type < static_cast<NodeTypeId>(node_types_.size()));
  FEDDA_CHECK(dst_type >= 0 &&
              dst_type < static_cast<NodeTypeId>(node_types_.size()));
  edge_types_.push_back(EdgeTypeInfo{name, src_type, dst_type});
  return static_cast<EdgeTypeId>(edge_types_.size() - 1);
}

NodeId HeteroGraphBuilder::AddNode(NodeTypeId t) {
  FEDDA_CHECK(t >= 0 && t < static_cast<NodeTypeId>(node_types_.size()));
  node_type_.push_back(t);
  ++type_counts_[static_cast<size_t>(t)];
  return static_cast<NodeId>(node_type_.size() - 1);
}

NodeId HeteroGraphBuilder::AddNodes(NodeTypeId t, int64_t count) {
  FEDDA_CHECK_GT(count, 0);
  const NodeId first = AddNode(t);
  for (int64_t i = 1; i < count; ++i) AddNode(t);
  return first;
}

EdgeId HeteroGraphBuilder::AddEdge(NodeId u, NodeId v, EdgeTypeId t) {
  FEDDA_CHECK(t >= 0 && t < static_cast<EdgeTypeId>(edge_types_.size()));
  FEDDA_CHECK(u >= 0 && u < static_cast<NodeId>(node_type_.size()));
  FEDDA_CHECK(v >= 0 && v < static_cast<NodeId>(node_type_.size()));
  const EdgeTypeInfo& info = edge_types_[static_cast<size_t>(t)];
  FEDDA_CHECK_EQ(node_type_[static_cast<size_t>(u)], info.src_type);
  FEDDA_CHECK_EQ(node_type_[static_cast<size_t>(v)], info.dst_type);
  edge_src_.push_back(u);
  edge_dst_.push_back(v);
  edge_etype_.push_back(t);
  return static_cast<EdgeId>(edge_src_.size() - 1);
}

void HeteroGraphBuilder::SetFeatures(NodeTypeId t, tensor::Tensor features) {
  FEDDA_CHECK(t >= 0 && t < static_cast<NodeTypeId>(node_types_.size()));
  const size_t i = static_cast<size_t>(t);
  FEDDA_CHECK_EQ(features.rows(), type_counts_[i]);
  FEDDA_CHECK_EQ(features.cols(), node_types_[i].feature_dim);
  features_[i] = std::move(features);
  features_set_[i] = true;
}

HeteroGraph HeteroGraphBuilder::Build() {
  HeteroGraph g;
  g.node_types_ = node_types_;
  g.edge_types_ = edge_types_;
  g.node_type_ = node_type_;
  g.edge_src_ = edge_src_;
  g.edge_dst_ = edge_dst_;
  g.edge_etype_ = edge_etype_;

  g.type_local_index_.resize(node_type_.size());
  g.nodes_by_type_.assign(node_types_.size(), {});
  std::vector<int64_t> next_local(node_types_.size(), 0);
  for (size_t v = 0; v < node_type_.size(); ++v) {
    const size_t t = static_cast<size_t>(node_type_[v]);
    g.type_local_index_[v] = next_local[t]++;
    g.nodes_by_type_[t].push_back(static_cast<NodeId>(v));
  }

  auto feats = std::make_shared<std::vector<tensor::Tensor>>();
  feats->reserve(node_types_.size());
  for (size_t t = 0; t < node_types_.size(); ++t) {
    if (features_set_[t]) {
      feats->push_back(std::move(features_[t]));
    } else {
      feats->push_back(
          tensor::Tensor::Zeros(type_counts_[t], node_types_[t].feature_dim));
    }
  }
  g.features_ = std::move(feats);
  g.BuildAdjacency();
  return g;
}

}  // namespace fedda::graph
