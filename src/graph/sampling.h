#ifndef FEDDA_GRAPH_SAMPLING_H_
#define FEDDA_GRAPH_SAMPLING_H_

#include <vector>

#include "core/rng.h"
#include "graph/hetero_graph.h"

namespace fedda::graph {

/// Draws corrupted (negative) node pairs for link prediction training and
/// evaluation. For a positive edge (u, v) of type t, a negative replaces v
/// with a uniformly sampled node of the same type that is not linked to u by
/// an edge of type t (best effort: after `max_tries` collisions the last
/// candidate is returned, which matches common practice on dense graphs).
class NegativeSampler {
 public:
  /// `graph` must outlive the sampler. Membership checks run against this
  /// graph, so pass the global graph when sampling evaluation negatives and
  /// the local graph for client-side training negatives.
  explicit NegativeSampler(const HeteroGraph* graph, int max_tries = 16);

  /// One corrupted destination for (u, v, t).
  NodeId CorruptDst(NodeId u, NodeId v, EdgeTypeId t, core::Rng* rng) const;

  /// `count` corrupted destinations for (u, v, t); may contain duplicates on
  /// tiny graphs (sampling with replacement).
  std::vector<NodeId> SampleNegatives(NodeId u, NodeId v, EdgeTypeId t,
                                      int count, core::Rng* rng) const;

 private:
  const HeteroGraph* graph_;
  int max_tries_;
};

/// Shuffles `edge_ids` and chops them into batches of `batch_size` (the last
/// batch may be smaller). batch_size <= 0 yields a single full batch.
std::vector<std::vector<EdgeId>> MakeBatches(std::vector<EdgeId> edge_ids,
                                             int64_t batch_size,
                                             core::Rng* rng);

}  // namespace fedda::graph

#endif  // FEDDA_GRAPH_SAMPLING_H_
