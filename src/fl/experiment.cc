#include "fl/experiment.h"

#include <algorithm>

#include "data/generator.h"

namespace fedda::fl {

FederatedSystem FederatedSystem::Build(const SystemConfig& config) {
  core::Rng rng(config.seed);
  FederatedSystem system;
  system.global_ = std::make_unique<graph::HeteroGraph>(
      data::GenerateGraph(config.data, &rng));
  system.split_ =
      graph::SplitEdges(*system.global_, config.test_fraction, &rng);
  system.shards_ = data::PartitionClients(*system.global_,
                                          system.split_.train,
                                          config.partition, &rng);

  std::vector<int64_t> feature_dims;
  std::vector<std::string> node_type_names;
  for (graph::NodeTypeId t = 0; t < system.global_->num_node_types(); ++t) {
    feature_dims.push_back(system.global_->node_type_info(t).feature_dim);
    node_type_names.push_back(system.global_->node_type_info(t).name);
  }
  std::vector<std::string> edge_type_names;
  for (graph::EdgeTypeId t = 0; t < system.global_->num_edge_types(); ++t) {
    edge_type_names.push_back(system.global_->edge_type_info(t).name);
  }
  system.model_ = std::make_unique<hgn::SimpleHgn>(
      std::move(feature_dims), std::move(node_type_names),
      std::move(edge_type_names), config.model);
  return system;
}

tensor::ParameterStore FederatedSystem::MakeInitialStore(
    uint64_t seed) const {
  tensor::ParameterStore store;
  core::Rng rng(seed);
  model_->InitParameters(&store, &rng);
  return store;
}

std::vector<std::unique_ptr<Client>> FederatedSystem::MakeClients(
    const tensor::ParameterStore& reference) const {
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const data::ClientShard& shard = shards_[i];
    graph::HeteroGraph local = global_->SubgraphFromEdges(shard.local_edges);
    // Map task edges (global ids) to local edge ids: SubgraphFromEdges
    // numbers edges by position in shard.local_edges, and both id lists are
    // sorted, so a single merge pass suffices.
    std::vector<graph::EdgeId> local_tasks;
    local_tasks.reserve(shard.task_edges.size());
    size_t j = 0;
    for (size_t k = 0;
         k < shard.local_edges.size() && j < shard.task_edges.size(); ++k) {
      if (shard.local_edges[k] == shard.task_edges[j]) {
        local_tasks.push_back(static_cast<graph::EdgeId>(k));
        ++j;
      }
    }
    FEDDA_CHECK_EQ(j, shard.task_edges.size())
        << "task edges must be a subset of local edges";
    clients.push_back(std::make_unique<Client>(
        static_cast<int>(i), model_.get(), std::move(local),
        std::move(local_tasks), reference));
  }
  return clients;
}

FlRunResult RunFederated(const FederatedSystem& system,
                         const FlOptions& options, uint64_t run_seed) {
  tensor::ParameterStore store = system.MakeInitialStore(run_seed);
  std::vector<std::unique_ptr<Client>> clients = system.MakeClients(store);
  FederatedRunner runner(&system.model(), &system.global(),
                         &system.test_edges(), std::move(clients), options);
  core::Rng rng(run_seed ^ 0xF3DDAF3DDAULL);
  return runner.Run(&store, &rng);
}

std::vector<FlRunResult> RunFederatedRepeated(const FederatedSystem& system,
                                              const FlOptions& options,
                                              int num_runs,
                                              uint64_t base_seed) {
  FEDDA_CHECK_GT(num_runs, 0);
  std::vector<FlRunResult> runs;
  runs.reserve(static_cast<size_t>(num_runs));
  for (int r = 0; r < num_runs; ++r) {
    runs.push_back(RunFederated(system, options, base_seed + uint64_t(r)));
  }
  return runs;
}

BaselineResult RunGlobal(const FederatedSystem& system, int rounds,
                         const hgn::TrainOptions& train,
                         const hgn::EvalOptions& eval, uint64_t run_seed,
                         bool eval_every_round) {
  tensor::ParameterStore store = system.MakeInitialStore(run_seed);
  core::Rng rng(run_seed ^ 0x61B06A1ULL);
  return RunGlobalBaseline(&system.model(), &system.global(),
                           system.train_edges(), system.test_edges(), rounds,
                           train, eval, &store, &rng, eval_every_round);
}

BaselineResult RunLocal(const FederatedSystem& system, int rounds,
                        const hgn::TrainOptions& train,
                        const hgn::EvalOptions& eval, uint64_t run_seed) {
  tensor::ParameterStore store = system.MakeInitialStore(run_seed);
  std::vector<std::unique_ptr<Client>> clients = system.MakeClients(store);
  core::Rng rng(run_seed ^ 0x10CA1ULL);
  return RunLocalBaseline(&system.model(), &system.global(),
                          system.test_edges(), &clients, rounds, train, eval,
                          &rng);
}

RepeatedSummary Summarize(const std::vector<FlRunResult>& runs) {
  RepeatedSummary summary;
  if (runs.empty()) return summary;

  std::vector<double> final_aucs, final_mrrs;
  double uplink_groups = 0.0, uplink_scalars = 0.0;
  double max_uplink_scalars = 0.0;
  double uplink_bytes = 0.0, downlink_bytes = 0.0, downlink_scalars = 0.0;
  for (const FlRunResult& run : runs) {
    final_aucs.push_back(run.final_auc);
    final_mrrs.push_back(run.final_mrr);
    uplink_groups += static_cast<double>(run.total_uplink_groups);
    uplink_scalars += static_cast<double>(run.total_uplink_scalars);
    max_uplink_scalars += static_cast<double>(run.total_max_uplink_scalars);
    uplink_bytes += static_cast<double>(run.total_uplink_bytes);
    downlink_bytes += static_cast<double>(run.total_downlink_bytes);
    downlink_scalars += static_cast<double>(run.total_downlink_scalars);
  }
  summary.final_auc = metrics::ComputeMeanStd(final_aucs);
  summary.final_mrr = metrics::ComputeMeanStd(final_mrrs);
  summary.mean_total_uplink_groups =
      uplink_groups / static_cast<double>(runs.size());
  summary.mean_total_uplink_scalars =
      uplink_scalars / static_cast<double>(runs.size());
  summary.mean_total_max_uplink_scalars =
      max_uplink_scalars / static_cast<double>(runs.size());
  summary.mean_total_uplink_bytes =
      uplink_bytes / static_cast<double>(runs.size());
  summary.mean_total_downlink_bytes =
      downlink_bytes / static_cast<double>(runs.size());
  summary.mean_total_downlink_scalars =
      downlink_scalars / static_cast<double>(runs.size());

  const size_t rounds = runs[0].history.size();
  bool uniform = true;
  for (const FlRunResult& run : runs) {
    uniform = uniform && run.history.size() == rounds;
  }
  if (uniform && rounds > 0) {
    summary.mean_auc_per_round.resize(rounds);
    summary.min_auc_per_round.assign(rounds, 1.0);
    summary.max_auc_per_round.assign(rounds, 0.0);
    for (size_t t = 0; t < rounds; ++t) {
      double total = 0.0;
      for (const FlRunResult& run : runs) {
        const double auc = run.history[t].auc;
        total += auc;
        summary.min_auc_per_round[t] =
            std::min(summary.min_auc_per_round[t], auc);
        summary.max_auc_per_round[t] =
            std::max(summary.max_auc_per_round[t], auc);
      }
      summary.mean_auc_per_round[t] =
          total / static_cast<double>(runs.size());
    }
  }
  return summary;
}

}  // namespace fedda::fl
