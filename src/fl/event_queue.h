#ifndef FEDDA_FL_EVENT_QUEUE_H_
#define FEDDA_FL_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedda::fl {

/// What happened to a client at a point in virtual time.
enum class EventKind : uint8_t {
  /// The client's trained update reaches the server and is eligible for
  /// aggregation.
  kArrival = 0,
  /// The client drops out (crash/churn) before its update reaches the
  /// server: the update is lost and the client's downlink cache must be
  /// invalidated (it rejoins cold).
  kDeparture = 1,
  /// The server forced every client back into the active set because
  /// dynamic deactivation emptied it outside a reactivation window.
  kReactivation = 2,
};

const char* EventKindName(EventKind kind);

/// One scheduled client event in virtual time.
struct Event {
  /// Virtual-time instant (seconds) derived from the network/compute model.
  double time = 0.0;
  EventKind kind = EventKind::kArrival;
  int client = -1;
  /// The round whose broadcast the client trained on (staleness base for
  /// arrivals; the round the departure was scheduled in otherwise).
  int round = 0;
  /// Push order, assigned by the queue. Total tie-break: two events at the
  /// same virtual time pop in push order, so the pop sequence is a pure
  /// function of the push sequence — never of thread scheduling.
  uint64_t seq = 0;
};

/// Deterministic virtual-time priority queue for client events.
///
/// The server's event loop pushes arrivals/departures with times computed
/// from the timing model and pops them in (time, seq) order. All pushes and
/// pops happen on the coordinating thread in deterministic order, so a
/// seeded run's event sequence is bit-identical across worker_threads
/// settings — the worker pool only parallelizes training *between* queue
/// operations. The heap comparator is a strict weak order on (time, seq)
/// with seq unique, so pop order is total and never falls back to
/// std::push_heap's unspecified handling of equivalent keys.
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules an event; returns the assigned sequence number. `time` may
  /// be in the past relative to already-popped events (the queue does not
  /// police monotonicity; the caller's timing model does).
  uint64_t Push(double time, EventKind kind, int client, int round);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Earliest event without removing it. Queue must be non-empty.
  const Event& Peek() const;

  /// Removes and returns the earliest event, advancing virtual_now() to its
  /// time. Queue must be non-empty.
  Event Pop();

  /// Time of the most recently popped event (0 before any pop). The
  /// server's "current" virtual time.
  double virtual_now() const { return now_; }

 private:
  std::vector<Event> heap_;  // min-heap on (time, seq)
  uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_EVENT_QUEUE_H_
