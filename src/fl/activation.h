#ifndef FEDDA_FL_ACTIVATION_H_
#define FEDDA_FL_ACTIVATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "tensor/parameter_store.h"

namespace fedda::fl {

/// Unit of FedDA's parameter activation masks.
///
/// kTensor treats each named parameter group as one maskable unit — this is
/// the paper's accounting (Table 3 counts transmitted parameter groups).
/// kScalar masks individual scalars inside disentangled groups (ablation).
enum class ActivationGranularity { kTensor, kScalar };

/// How the per-unit deactivation threshold is derived from the returned
/// gradient magnitudes. The paper uses the mean "and leaves the discussion
/// of other settings to future work" (Sec. 5.3 fn. 2) — the other two are
/// that future work.
enum class ThresholdRule {
  /// Deactivate contributors strictly below the mean magnitude (paper).
  kMean,
  /// Deactivate contributors strictly below the median magnitude.
  kMedian,
  /// Deactivate contributors strictly below the `threshold_percentile`
  /// quantile of contributor magnitudes.
  kPercentile,
};

struct ActivationOptions {
  ActivationGranularity granularity = ActivationGranularity::kTensor;
  /// Occupation-rate threshold alpha (paper Sec. 5.3): a client whose
  /// active disentangled units fall below alpha * N_d is deactivated.
  double alpha = 0.5;
  ThresholdRule threshold_rule = ThresholdRule::kMean;
  /// Quantile in [0, 1] for ThresholdRule::kPercentile; 0.25 deactivates
  /// (roughly) the bottom quarter of contributors per unit.
  double threshold_percentile = 0.25;
};

/// Deactivation threshold over the contributing clients' magnitudes for one
/// unit, per `options.threshold_rule`. kMedian averages the two middle
/// values for even-sized sets (a true median, not the upper-middle order
/// statistic). Reorders `magnitudes`; must be non-empty.
double ComputeThreshold(std::vector<double>* magnitudes,
                        const ActivationOptions& options);

/// Server-side dynamic activation state: the active client set D_A and the
/// per-client parameter request masks I_i (paper Sec. 5.2-5.3).
///
/// Only units in the disentangled set [N_d] are ever masked; all other
/// parameters are always requested from active clients. Masks follow the
/// paper's text criterion: after round t, unit k is deactivated for client i
/// if i's returned pseudo-gradient magnitude for k is below the mean over
/// all clients that returned k (see DESIGN.md for the Eq. 7 discrepancy).
class ActivationState {
 public:
  /// `reference` supplies the parameter layout (group sizes, disentangled
  /// flags); all clients start active with all-ones masks.
  ActivationState(int num_clients, const tensor::ParameterStore& reference,
                  const ActivationOptions& options);

  int num_clients() const { return num_clients_; }
  int num_active_clients() const;
  bool client_active(int client) const;
  /// Ascending ids of active clients (the paper's D_A).
  std::vector<int> ActiveClients() const;

  /// Number of maskable units (disentangled groups or scalars).
  int64_t num_units() const { return num_units_; }

  /// Whether client `client` is asked to return unit `unit`.
  bool UnitActive(int client, int64_t unit) const;
  /// Whether any scalar of `group` is requested from `client` (groups
  /// outside [N_d] are always requested).
  bool GroupRequested(int client, int group) const;
  /// Active unit count of a client (the sum over I_i in the alpha rule).
  int64_t ActiveUnits(int client) const;

  /// Uplink cost of `client` this round, in parameter groups and scalars.
  /// At tensor granularity a masked group costs 0; at scalar granularity a
  /// partially masked group costs its active scalars (and counts as
  /// transmitted if any scalar is active).
  int64_t TransmittedGroups(int client) const;
  int64_t TransmittedScalars(int client) const;

  /// Mask update from returned pseudo-gradients. `participants` are the
  /// clients that trained this round; `magnitudes[p][u]` is participant
  /// p's |delta| magnitude for unit u (mean |delta| over the group at
  /// tensor granularity). Units the client did not return (mask 0) are
  /// ignored in both the mean and the update.
  void UpdateMasks(const std::vector<int>& participants,
                   const std::vector<std::vector<double>>& magnitudes);

  /// Applies the alpha occupation rule to `participants`; returns the
  /// clients deactivated by it (removed from D_A).
  std::vector<int> DeactivateLowOccupancy(const std::vector<int>& participants);

  /// Removes a client from D_A (keeps its mask).
  void DeactivateClient(int client);
  /// Restart strategy: reactivate every client and reset all masks to ones.
  void ActivateAll();
  /// Explore rejoin: reactivate one client with a fresh all-ones mask.
  void ReactivateClient(int client);

  const ActivationOptions& options() const { return options_; }

  /// Raw per-unit request mask of `client` (num_units() entries of 0/1).
  /// Shipped to remote client processes so both ends of a transport build
  /// byte-identical uplink payloads from the same mask.
  const std::vector<uint8_t>& ClientMask(int client) const;
  /// Installs a mask received over a transport. `mask` must have
  /// num_units() entries; the active-client set is untouched (a remote
  /// process only mirrors its own row, the server owns D_A).
  void SetClientMask(int client, const std::vector<uint8_t>& mask);

  /// Persists the dynamic state (active set + masks, bit-packed via the
  /// fl/wire.h codec) plus the deactivation options so a server can resume
  /// a FedDA run after a crash: pair with a ParameterStore checkpoint.
  [[nodiscard]] core::Status Save(const std::string& path) const;
  /// Restores state saved by Save(); the layout (client count, granularity,
  /// unit count) and — for v2 files — the deactivation options (alpha,
  /// threshold rule, percentile) must match this instance's construction.
  /// Legacy v1 files (unpacked masks, no options) still load.
  [[nodiscard]] core::Status Load(const std::string& path);

  // -- Layout helpers shared with the runner --------------------------------
  /// Maps unit index -> parameter group id.
  int UnitGroup(int64_t unit) const;
  /// For scalar granularity: offset of the unit inside its group; 0 at
  /// tensor granularity.
  int64_t UnitOffsetInGroup(int64_t unit) const;
  /// First unit of a disentangled group, or -1 if the group is not maskable.
  int64_t GroupFirstUnit(int group) const;
  /// Number of units of a group (0 for non-disentangled groups).
  int64_t GroupUnitCount(int group) const;

 private:
  int num_clients_;
  ActivationOptions options_;
  int64_t num_units_ = 0;

  // Layout derived from the reference store.
  std::vector<int64_t> group_sizes_;
  std::vector<bool> group_disentangled_;
  std::vector<int64_t> group_first_unit_;  // -1 for non-disentangled
  std::vector<int> unit_group_;
  int64_t total_groups_ = 0;
  int64_t total_scalars_ = 0;
  int64_t nondisentangled_groups_ = 0;
  int64_t nondisentangled_scalars_ = 0;

  std::vector<bool> client_active_;
  /// masks_[client] has num_units_ entries.
  std::vector<std::vector<uint8_t>> masks_;
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_ACTIVATION_H_
