#ifndef FEDDA_FL_BASELINES_H_
#define FEDDA_FL_BASELINES_H_

#include <memory>
#include <vector>

#include "fl/client.h"
#include "fl/runner.h"

namespace fedda::fl {

/// Result of a non-federated baseline run.
struct BaselineResult {
  double auc = 0.0;
  double mrr = 0.0;
  /// Per-round eval trace (Global baseline only; empty for Local).
  std::vector<RoundRecord> history;
};

/// Global baseline (paper's upper bound): trains Simple-HGN centrally on the
/// full global training edge set for `rounds` rounds of `options.local_epochs`
/// epochs each (matching the total local-compute budget of one FL client),
/// keeping optimizer state across rounds. Evaluates on the global test set.
BaselineResult RunGlobalBaseline(const hgn::SimpleHgn* model,
                                 const graph::HeteroGraph* global_graph,
                                 const std::vector<graph::EdgeId>& train_edges,
                                 const std::vector<graph::EdgeId>& test_edges,
                                 int rounds, const hgn::TrainOptions& options,
                                 const hgn::EvalOptions& eval_options,
                                 tensor::ParameterStore* store, core::Rng* rng,
                                 bool eval_every_round = false);

/// Local baseline (paper's lower bound): every client trains solely on its
/// own shard for the same round budget with no communication; each local
/// model is evaluated on the global test set and the scores are averaged.
BaselineResult RunLocalBaseline(
    const hgn::SimpleHgn* model, const graph::HeteroGraph* global_graph,
    const std::vector<graph::EdgeId>& test_edges,
    std::vector<std::unique_ptr<Client>>* clients, int rounds,
    const hgn::TrainOptions& options, const hgn::EvalOptions& eval_options,
    core::Rng* rng);

}  // namespace fedda::fl

#endif  // FEDDA_FL_BASELINES_H_
