#include "fl/wire.h"

#include <algorithm>
#include <utility>

#include "core/binary_io.h"
#include "core/check.h"

namespace fedda::fl {

namespace {

constexpr uint32_t kWireMagic = 0xF3DDA13E;
constexpr uint32_t kWireVersion = 1;

/// Header: magic, version, kind, client, round, total_groups, entry count.
constexpr int64_t kHeaderBytes = 7 * 4;

/// Per-entry fixed overhead: group id (u32) + encoding tag (u8) + size
/// (i64).
constexpr int64_t kEntryHeaderBytes = 4 + 1 + 8;

constexpr uint8_t kEncodingDense = 0;
constexpr uint8_t kEncodingMasked = 1;

int64_t MaskBytes(int64_t bit_count) { return (bit_count + 7) / 8; }

int64_t CountSetBits(const std::vector<uint8_t>& packed, int64_t count) {
  int64_t set = 0;
  for (int64_t i = 0; i < count; ++i) {
    if (packed[static_cast<size_t>(i / 8)] & (1u << (i % 8))) ++set;
  }
  return set;
}

}  // namespace

std::vector<uint8_t> PackBits(const uint8_t* bits, size_t count) {
  std::vector<uint8_t> packed((count + 7) / 8, 0);
  for (size_t i = 0; i < count; ++i) {
    if (bits[i] != 0) packed[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  return packed;
}

std::vector<uint8_t> PackBits(const std::vector<uint8_t>& bits) {
  return PackBits(bits.data(), bits.size());
}

std::vector<uint8_t> UnpackBits(const std::vector<uint8_t>& packed,
                                size_t count) {
  FEDDA_CHECK_GE(packed.size() * 8, count);
  std::vector<uint8_t> bits(count, 0);
  for (size_t i = 0; i < count; ++i) {
    bits[i] = (packed[i / 8] >> (i % 8)) & 1u;
  }
  return bits;
}

int64_t WireGroup::EncodedBytes() const {
  return kEntryHeaderBytes + static_cast<int64_t>(mask.size()) +
         static_cast<int64_t>(values.size()) *
             static_cast<int64_t>(sizeof(float));
}

int64_t WirePayload::PayloadScalars() const {
  int64_t scalars = 0;
  for (const WireGroup& entry : groups_) {
    scalars += static_cast<int64_t>(entry.values.size());
  }
  return scalars;
}

int64_t WirePayload::CoveredScalars() const {
  int64_t scalars = 0;
  for (const WireGroup& entry : groups_) scalars += entry.size;
  return scalars;
}

int64_t WirePayload::EncodedBytes() const {
  int64_t bytes = kHeaderBytes;
  for (const WireGroup& entry : groups_) bytes += entry.EncodedBytes();
  return bytes;
}

std::vector<uint8_t> WirePayload::Serialize() const {
  core::ByteWriter writer;
  writer.WriteU32(kWireMagic);
  writer.WriteU32(kWireVersion);
  writer.WriteU32(static_cast<uint32_t>(kind_));
  writer.WriteU32(static_cast<uint32_t>(client_));
  writer.WriteU32(static_cast<uint32_t>(round_));
  writer.WriteU32(static_cast<uint32_t>(total_groups_));
  writer.WriteU32(static_cast<uint32_t>(groups_.size()));
  for (const WireGroup& entry : groups_) {
    writer.WriteU32(static_cast<uint32_t>(entry.group));
    writer.WriteU8(entry.mask.empty() ? kEncodingDense : kEncodingMasked);
    writer.WriteI64(entry.size);
    writer.WriteBytes(entry.mask);
    writer.WriteFloats(entry.values);
  }
  FEDDA_CHECK_EQ(writer.size(), EncodedBytes());
  return writer.Release();
}

core::Status WirePayload::Deserialize(const std::vector<uint8_t>& bytes) {
  core::ByteReader reader(bytes);
  if (reader.ReadU32() != kWireMagic) {
    return core::Status::InvalidArgument("not a wire payload (bad magic)");
  }
  const uint32_t version = reader.ReadU32();
  if (version != kWireVersion) {
    return core::Status::InvalidArgument("unsupported wire version " +
                                         std::to_string(version));
  }
  const uint32_t kind = reader.ReadU32();
  if (kind != static_cast<uint32_t>(WireKind::kUplink) &&
      kind != static_cast<uint32_t>(WireKind::kDownlink)) {
    return core::Status::InvalidArgument("invalid payload kind");
  }
  const uint32_t client = reader.ReadU32();
  const uint32_t round = reader.ReadU32();
  const uint32_t total_groups = reader.ReadU32();
  const uint32_t entry_count = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (total_groups > (1u << 24) || entry_count > total_groups) {
    return core::Status::InvalidArgument(
        "implausible group counts (corrupt payload?)");
  }

  std::vector<WireGroup> entries;
  entries.reserve(entry_count);
  int previous_group = -1;
  for (uint32_t e = 0; e < entry_count; ++e) {
    WireGroup entry;
    entry.group = static_cast<int>(reader.ReadU32());
    const uint8_t encoding = reader.ReadU8();
    entry.size = reader.ReadI64();
    if (!reader.status().ok()) return reader.status();
    if (entry.group <= previous_group ||
        entry.group >= static_cast<int>(total_groups)) {
      return core::Status::InvalidArgument(
          "group ids must be ascending and in range");
    }
    previous_group = entry.group;
    if (entry.size < 0) {
      return core::Status::InvalidArgument("negative group size");
    }
    // Validate-before-allocate, and before arithmetic: a size near
    // INT64_MAX would overflow MaskBytes' `size + 7` (UB) before the
    // block reads could reject it. Even a bit-packed mask needs size/8
    // bytes still in the payload, so this cap is sound for both encodings.
    if (static_cast<uint64_t>(entry.size) > 8ull * reader.remaining()) {
      return core::Status::InvalidArgument("group size exceeds payload");
    }
    if (encoding == kEncodingMasked) {
      entry.mask = reader.ReadBytes(static_cast<size_t>(MaskBytes(entry.size)));
      if (!reader.status().ok()) return reader.status();
      // Canonical encoding: padding bits beyond `size` must be zero, so a
      // payload has exactly one byte representation.
      for (int64_t bit = entry.size; bit < MaskBytes(entry.size) * 8; ++bit) {
        if (entry.mask[static_cast<size_t>(bit / 8)] & (1u << (bit % 8))) {
          return core::Status::InvalidArgument("nonzero mask padding bits");
        }
      }
      entry.values = reader.ReadFloats(
          static_cast<size_t>(CountSetBits(entry.mask, entry.size)));
    } else if (encoding == kEncodingDense) {
      entry.values = reader.ReadFloats(static_cast<size_t>(entry.size));
    } else {
      return core::Status::InvalidArgument("invalid entry encoding");
    }
    if (!reader.status().ok()) return reader.status();
    entries.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return core::Status::InvalidArgument("trailing bytes after payload");
  }

  kind_ = static_cast<WireKind>(kind);
  client_ = static_cast<int>(client);
  round_ = static_cast<int>(round);
  total_groups_ = static_cast<int>(total_groups);
  groups_ = std::move(entries);
  return core::Status::OK();
}

core::Status WirePayload::ApplyTo(tensor::ParameterStore* store) const {
  if (store->num_groups() != total_groups_) {
    return core::Status::InvalidArgument(
        "payload built for " + std::to_string(total_groups_) +
        " groups, store has " + std::to_string(store->num_groups()));
  }
  for (const WireGroup& entry : groups_) {
    if (entry.group < 0 || entry.group >= store->num_groups()) {
      return core::Status::InvalidArgument("group id out of range");
    }
    tensor::Tensor& target = store->value(entry.group);
    if (target.size() != entry.size) {
      return core::Status::InvalidArgument(
          "group size mismatch for group " + std::to_string(entry.group));
    }
    if (entry.mask.empty()) {
      FEDDA_CHECK_EQ(static_cast<int64_t>(entry.values.size()), entry.size);
      std::copy(entry.values.begin(), entry.values.end(), target.data());
      continue;
    }
    size_t next_value = 0;
    for (int64_t s = 0; s < entry.size; ++s) {
      if (entry.mask[static_cast<size_t>(s / 8)] & (1u << (s % 8))) {
        FEDDA_CHECK_LT(next_value, entry.values.size());
        target.data()[s] = entry.values[next_value++];
      }
    }
    FEDDA_CHECK_EQ(next_value, entry.values.size());
  }
  return core::Status::OK();
}

namespace {

/// Dense entry carrying the whole of `params`' group `gid`.
WireGroup DenseEntry(const tensor::ParameterStore& params, int gid) {
  const tensor::Tensor& value = params.value(gid);
  WireGroup entry;
  entry.group = gid;
  entry.size = value.size();
  entry.values.assign(value.data(), value.data() + value.size());
  return entry;
}

}  // namespace

WirePayload BuildUplinkPayload(const ActivationState& state, int client,
                               int round,
                               const tensor::ParameterStore& params) {
  const bool scalar_gran =
      state.options().granularity == ActivationGranularity::kScalar;
  WirePayload payload;
  payload.kind_ = WireKind::kUplink;
  payload.client_ = client;
  payload.round_ = round;
  payload.total_groups_ = params.num_groups();
  for (int gid = 0; gid < params.num_groups(); ++gid) {
    const int64_t first_unit = state.GroupFirstUnit(gid);
    if (first_unit < 0 || !scalar_gran) {
      // Non-disentangled groups are always uploaded whole; at tensor
      // granularity an active disentangled group is too (a masked one is
      // simply absent — its "mask" is the missing entry).
      if (first_unit >= 0 && !state.UnitActive(client, first_unit)) continue;
      payload.groups_.push_back(DenseEntry(params, gid));
      continue;
    }
    // Scalar granularity: bit-packed per-scalar mask + active scalars.
    const int64_t units = state.GroupUnitCount(gid);
    std::vector<uint8_t> bits(static_cast<size_t>(units), 0);
    bool any_active = false;
    for (int64_t u = 0; u < units; ++u) {
      if (state.UnitActive(client, first_unit + u)) {
        bits[static_cast<size_t>(u)] = 1;
        any_active = true;
      }
    }
    if (!any_active) continue;  // fully masked: the group is not transmitted
    WireGroup entry;
    entry.group = gid;
    entry.size = units;
    entry.mask = PackBits(bits);
    const tensor::Tensor& value = params.value(gid);
    FEDDA_CHECK_EQ(value.size(), units);
    for (int64_t u = 0; u < units; ++u) {
      if (bits[static_cast<size_t>(u)]) {
        entry.values.push_back(value.data()[u]);
      }
    }
    payload.groups_.push_back(std::move(entry));
  }
  return payload;
}

WirePayload BuildDenseUplinkPayload(const std::vector<int>& groups,
                                    int client, int round,
                                    const tensor::ParameterStore& params) {
  WirePayload payload;
  payload.kind_ = WireKind::kUplink;
  payload.client_ = client;
  payload.round_ = round;
  payload.total_groups_ = params.num_groups();
  for (int gid : groups) {
    FEDDA_CHECK(gid >= 0 && gid < params.num_groups());
    payload.groups_.push_back(DenseEntry(params, gid));
  }
  return payload;
}

WirePayload BuildDownlinkPayload(const std::vector<int>& groups, int client,
                                 int round,
                                 const tensor::ParameterStore& global) {
  WirePayload payload;
  payload.kind_ = WireKind::kDownlink;
  payload.client_ = client;
  payload.round_ = round;
  payload.total_groups_ = global.num_groups();
  for (int gid : groups) {
    FEDDA_CHECK(gid >= 0 && gid < global.num_groups());
    payload.groups_.push_back(DenseEntry(global, gid));
  }
  return payload;
}

DownlinkVersionTracker::DownlinkVersionTracker(int num_clients, int num_groups)
    : num_clients_(num_clients), num_groups_(num_groups),
      group_version_(static_cast<size_t>(num_groups), 0),
      sent_version_(static_cast<size_t>(num_clients),
                    std::vector<int>(static_cast<size_t>(num_groups), -1)) {
  FEDDA_CHECK_GT(num_clients, 0);
  FEDDA_CHECK_GE(num_groups, 0);
}

std::vector<int> DownlinkVersionTracker::ClaimStale(
    int client, const std::vector<int>& requested) {
  FEDDA_CHECK_GE(client, 0);
  FEDDA_CHECK_LT(client, num_clients_);
  std::vector<int> need;
  core::MutexLock lock(&mu_);
  std::vector<int>& cached = sent_version_[static_cast<size_t>(client)];
  for (int gid : requested) {
    FEDDA_CHECK_GE(gid, 0);
    FEDDA_CHECK_LT(gid, num_groups_);
    if (cached[static_cast<size_t>(gid)] !=
        group_version_[static_cast<size_t>(gid)]) {
      need.push_back(gid);
      cached[static_cast<size_t>(gid)] =
          group_version_[static_cast<size_t>(gid)];
    }
  }
  return need;
}

void DownlinkVersionTracker::AdvanceGroups(
    const std::vector<uint8_t>& updated) {
  FEDDA_CHECK_EQ(static_cast<int>(updated.size()), num_groups_);
  core::MutexLock lock(&mu_);
  for (int gid = 0; gid < num_groups_; ++gid) {
    if (updated[static_cast<size_t>(gid)]) {
      ++group_version_[static_cast<size_t>(gid)];
    }
  }
}

void DownlinkVersionTracker::InvalidateClient(int client) {
  FEDDA_CHECK_GE(client, 0);
  FEDDA_CHECK_LT(client, num_clients_);
  core::MutexLock lock(&mu_);
  std::vector<int>& cached = sent_version_[static_cast<size_t>(client)];
  std::fill(cached.begin(), cached.end(), -1);
}

int DownlinkVersionTracker::group_version(int gid) const {
  FEDDA_CHECK_GE(gid, 0);
  FEDDA_CHECK_LT(gid, num_groups_);
  core::MutexLock lock(&mu_);
  return group_version_[static_cast<size_t>(gid)];
}

int DownlinkVersionTracker::sent_version(int client, int gid) const {
  FEDDA_CHECK_GE(client, 0);
  FEDDA_CHECK_LT(client, num_clients_);
  FEDDA_CHECK_GE(gid, 0);
  FEDDA_CHECK_LT(gid, num_groups_);
  core::MutexLock lock(&mu_);
  return sent_version_[static_cast<size_t>(client)][static_cast<size_t>(gid)];
}

}  // namespace fedda::fl
