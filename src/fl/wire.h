#ifndef FEDDA_FL_WIRE_H_
#define FEDDA_FL_WIRE_H_

#include <cstdint>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "fl/activation.h"
#include "tensor/parameter_store.h"

namespace fedda::fl {

/// Wire format for federated round payloads.
///
/// Until this layer existed, communication volume was *estimated* from
/// scalar counts and every round was charged a full-model downlink. A
/// WirePayload is the real serialized artifact a deployment would put on
/// the network: an uplink payload carries a participant's weights sparsely
/// under its activation mask (bit-packed unit mask + only the active
/// scalars; whole groups for non-disentangled or tensor-granularity
/// units), and a downlink payload carries only the groups a client
/// requests. `EncodedBytes()` is the exact serialized size, so the
/// runner's accounting — including mask overhead — is measured, not
/// modeled. See DESIGN.md §8 for the byte layout.

/// Packs `count` bits (each byte 0 or 1) LSB-first into ceil(count/8)
/// bytes. Shared by the wire payloads and ActivationState's checkpoint
/// format.
std::vector<uint8_t> PackBits(const uint8_t* bits, size_t count);
std::vector<uint8_t> PackBits(const std::vector<uint8_t>& bits);

/// Inverse of PackBits: expands `packed` into `count` bytes of 0/1.
/// `packed` must hold at least ceil(count/8) bytes.
std::vector<uint8_t> UnpackBits(const std::vector<uint8_t>& packed,
                                size_t count);

/// Direction tag embedded in every payload header.
enum class WireKind : uint32_t {
  kUplink = 1,
  kDownlink = 2,
};

/// One parameter group on the wire. Dense entries (empty `mask`) carry all
/// `size` scalars of the group; masked entries carry a bit-packed scalar
/// mask plus only the active scalars, in group order.
struct WireGroup {
  int group = 0;
  /// Full scalar count of the group in the model (also the mask bit count).
  int64_t size = 0;
  /// Bit-packed per-scalar mask (ceil(size/8) bytes), empty for dense.
  std::vector<uint8_t> mask;
  /// Dense: `size` values. Masked: one value per set mask bit.
  std::vector<float> values;

  /// Exact serialized size of this entry in bytes.
  int64_t EncodedBytes() const;
};

/// A serialized round message in either direction. Payloads are built by
/// the factory functions below (or reconstructed by Deserialize) and are
/// immutable afterwards.
class WirePayload {
 public:
  WirePayload() = default;

  WireKind kind() const { return kind_; }
  int client() const { return client_; }
  int round() const { return round_; }
  /// Total group count of the model the payload was built against (layout
  /// check on ApplyTo).
  int total_groups() const { return total_groups_; }
  const std::vector<WireGroup>& groups() const { return groups_; }

  /// Scalars carried by the payload (active values only for masked
  /// entries).
  int64_t PayloadScalars() const;
  /// Full-group scalar coverage: sum of `size` over entries (what the
  /// receiver ends up holding current values for).
  int64_t CoveredScalars() const;

  /// Exact byte size of Serialize()'s result, computed without
  /// serializing.
  int64_t EncodedBytes() const;

  /// Encodes the payload into the little-endian wire form.
  std::vector<uint8_t> Serialize() const;

  /// Parses `bytes` into this payload. Truncated or corrupt input returns
  /// a non-OK Status and leaves the payload unchanged; it never crashes.
  [[nodiscard]] core::Status Deserialize(const std::vector<uint8_t>& bytes);

  /// Writes the carried values into `store`: dense entries overwrite the
  /// whole group, masked entries overwrite only active scalars (inactive
  /// positions keep the store's values). With every group present and
  /// dense — a full-mask payload — this is bit-identical to
  /// ParameterStore::CopyValuesFrom. Fails if the payload does not match
  /// the store's layout.
  [[nodiscard]] core::Status ApplyTo(tensor::ParameterStore* store) const;

 private:
  friend WirePayload BuildUplinkPayload(const ActivationState& state,
                                        int client, int round,
                                        const tensor::ParameterStore& params);
  friend WirePayload BuildDenseUplinkPayload(
      const std::vector<int>& groups, int client, int round,
      const tensor::ParameterStore& params);
  friend WirePayload BuildDownlinkPayload(
      const std::vector<int>& groups, int client, int round,
      const tensor::ParameterStore& global);

  WireKind kind_ = WireKind::kUplink;
  int client_ = 0;
  int round_ = 0;
  int total_groups_ = 0;
  std::vector<WireGroup> groups_;
};

/// FedDA uplink: client `client`'s post-training weights under its current
/// masks. Non-disentangled groups and active tensor-granularity groups are
/// sent whole (dense entries); scalar-granularity disentangled groups are
/// sent as bit-packed mask + active scalars (masked entries); groups whose
/// mask is entirely off are omitted.
WirePayload BuildUplinkPayload(const ActivationState& state, int client,
                               int round,
                               const tensor::ParameterStore& params);

/// FedAvg uplink: the round's selected groups, each sent whole. `groups`
/// must be ascending valid group ids.
WirePayload BuildDenseUplinkPayload(const std::vector<int>& groups,
                                    int client, int round,
                                    const tensor::ParameterStore& params);

/// Downlink: the global values of exactly `groups` (the groups the client
/// requests and does not already hold current), each sent whole. An empty
/// `groups` list yields a header-only payload.
WirePayload BuildDownlinkPayload(const std::vector<int>& groups, int client,
                                 int round,
                                 const tensor::ParameterStore& global);

/// Server-side downlink staleness tracking. The server re-ships a group to
/// a client only when the client requests it and its cached copy is stale;
/// this class owns the version bookkeeping that decides "stale". Every
/// group starts at version 0 and every client's cached version at -1
/// ("never sent"), so a client's first request charges the initial full
/// broadcast; AdvanceGroups() bumps a group's version when aggregation
/// rewrites it, so unrequested or unselected groups are never re-shipped —
/// until a reactivated mask requests a stale group again, which is then
/// charged as a resync.
///
/// The state is mutex-guarded (a deployment's server answers many clients
/// concurrently); the sequential round loop pays one uncontended lock per
/// call. The lock covers each call, not a round: callers must not
/// interleave AdvanceGroups() with a round's ClaimStale() sweep if they
/// need all clients charged against the same versions.
class DownlinkVersionTracker {
 public:
  DownlinkVersionTracker(int num_clients, int num_groups);
  DownlinkVersionTracker(const DownlinkVersionTracker&) = delete;
  DownlinkVersionTracker& operator=(const DownlinkVersionTracker&) = delete;

  /// Filters ascending group ids `requested` down to the ones whose cached
  /// version at `client` is stale, marks those as sent at the current
  /// version, and returns them (still ascending). Groups outside
  /// `requested` are untouched — a client that stops requesting a group
  /// keeps its stale cache entry and pays the resync when it asks again.
  std::vector<int> ClaimStale(int client, const std::vector<int>& requested)
      FEDDA_EXCLUDES(mu_);

  /// Bumps the version of every group with a nonzero flag in `updated`
  /// (indexed by group id, as filled by the aggregation step).
  void AdvanceGroups(const std::vector<uint8_t>& updated) FEDDA_EXCLUDES(mu_);

  /// Forgets everything sent to `client` (every sent_version back to -1,
  /// "never sent"). Wired to departure events: a client that drops out
  /// loses its cached copy of the model, so when it rejoins, its first
  /// request is charged as a full resync. Without this, a departed client's
  /// stale sent_version survived forever and a rejoining client silently
  /// trained on stale groups the server believed were current.
  void InvalidateClient(int client) FEDDA_EXCLUDES(mu_);

  int num_clients() const { return num_clients_; }
  int num_groups() const { return num_groups_; }

  /// Test accessors.
  int group_version(int gid) const FEDDA_EXCLUDES(mu_);
  int sent_version(int client, int gid) const FEDDA_EXCLUDES(mu_);

 private:
  const int num_clients_;
  const int num_groups_;
  mutable core::Mutex mu_;
  std::vector<int> group_version_ FEDDA_GUARDED_BY(mu_);
  std::vector<std::vector<int>> sent_version_ FEDDA_GUARDED_BY(mu_);
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_WIRE_H_
