#include "fl/network.h"

#include "core/check.h"

namespace fedda::fl {

std::vector<RoundTiming> SimulateTiming(const FlRunResult& result,
                                        const NetworkModel& model,
                                        int64_t model_scalars,
                                        int local_epochs) {
  FEDDA_CHECK_GT(model_scalars, 0);
  FEDDA_CHECK_GT(local_epochs, 0);
  FEDDA_CHECK_GT(model.uplink_bytes_per_sec, 0.0);
  FEDDA_CHECK_GT(model.downlink_bytes_per_sec, 0.0);
  // Semi-async runs measure their network time while they run (the event
  // queue charges these same NetworkModel constants to produce
  // RoundRecord::virtual_time_sec); re-estimating it here would count
  // every transfer twice. Read the measured virtual_time_sec instead.
  FEDDA_CHECK(result.aggregation_mode != AggregationMode::kSemiAsync)
      << "SimulateTiming on a semi-async run double-counts network time: "
         "the history already records measured virtual_time_sec per round";

  std::vector<RoundTiming> timings;
  timings.reserve(result.history.size());
  double cumulative = 0.0;
  const double model_bytes =
      static_cast<double>(model_scalars) * model.bytes_per_scalar;
  for (const RoundRecord& record : result.history) {
    double round_sec = model.round_latency_sec;
    if (record.participants == 0) {
      // Genuine all-failed (or never-populated) round: nothing was trained
      // or transmitted, so only the fixed latency accrues. Keying this off
      // participants — never off zero byte fields — is what keeps an
      // all-failed round distinguishable from a legacy pre-wire record,
      // which also carries zero bytes but has participants > 0.
      cumulative += round_sec;
      timings.push_back(RoundTiming{round_sec, cumulative});
      continue;
    }
    round_sec += static_cast<double>(local_epochs) *
                 model.compute_sec_per_epoch;
    if (record.max_uplink_bytes > 0) {
      // Measured wire-format record: charge the straggler's real bytes in
      // each direction. A zero downlink is genuine (every participant's
      // cache was current), not missing data.
      round_sec += static_cast<double>(record.max_downlink_bytes) /
                   model.downlink_bytes_per_sec;
      round_sec += static_cast<double>(record.max_uplink_bytes) /
                   model.uplink_bytes_per_sec;
    } else {
      // Legacy history from before the wire format (participants > 0 but no
      // measured bytes): full-model downlink plus straggler-scalar uplink;
      // histories without even max_uplink_scalars fall back to the
      // (understated) per-participant mean.
      const double straggler_scalars =
          record.max_uplink_scalars > 0
              ? static_cast<double>(record.max_uplink_scalars)
              : static_cast<double>(record.uplink_scalars) /
                    static_cast<double>(record.participants);
      round_sec += model_bytes / model.downlink_bytes_per_sec;
      round_sec += straggler_scalars * model.bytes_per_scalar /
                   model.uplink_bytes_per_sec;
    }
    cumulative += round_sec;
    timings.push_back(RoundTiming{round_sec, cumulative});
  }
  return timings;
}

double TimeToAccuracy(const FlRunResult& result,
                      const std::vector<RoundTiming>& timing,
                      double target_auc) {
  FEDDA_CHECK_EQ(result.history.size(), timing.size());
  for (size_t t = 0; t < result.history.size(); ++t) {
    if (result.history[t].auc >= target_auc) {
      return timing[t].cumulative_sec;
    }
  }
  return -1.0;
}

}  // namespace fedda::fl
