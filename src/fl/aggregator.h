#ifndef FEDDA_FL_AGGREGATOR_H_
#define FEDDA_FL_AGGREGATOR_H_

#include <vector>

#include "fl/activation.h"
#include "tensor/parameter_store.h"

namespace fedda::fl {

/// Streaming (running-sum) masked aggregation.
///
/// The old server path materialized every participant's full update
/// simultaneously and folded them in one pass, so peak server memory was
/// O(participants x model). StreamingAggregator consumes one update at a
/// time into per-group running weighted sums — the caller can hand each
/// update off by move and free it immediately after Accumulate() returns —
/// so peak server memory is O(model): one set of accumulators plus the one
/// update in flight.
///
/// Bit-compatibility contract: feeding participants in the same order as
/// the old one-pass aggregation performed its inner loops produces
/// bit-identical results (same float Axpy sequence per whole group, same
/// double-addition sequence per scalar), which is what keeps the seeded
/// golden runs pinned across the refactor. The per-participant |delta|
/// magnitudes for the mask update are computed incrementally inside
/// Accumulate() for the same reason.
class StreamingAggregator {
 public:
  struct Config {
    /// FedDA masked aggregation (Eq. 6) with per-unit magnitudes; false =
    /// FedAvg dense aggregation over `selected_groups`.
    bool fedda = false;
    /// FedDA only: per-scalar masks inside disentangled groups.
    bool scalar_granularity = false;
  };

  /// `reference` holds the pre-round global values the participants trained
  /// on; it must stay alive and unchanged until Finalize(). `state` supplies
  /// the activation masks (required when config.fedda; ignored otherwise).
  /// `selected_groups` are the round's FedAvg groups (ascending; ignored
  /// when config.fedda — FedDA aggregates every group its masks touch).
  StreamingAggregator(const tensor::ParameterStore* reference,
                      const ActivationState* state,
                      std::vector<int> selected_groups, Config config);

  StreamingAggregator(const StreamingAggregator&) = delete;
  StreamingAggregator& operator=(const StreamingAggregator&) = delete;

  /// Folds one participant's update into the running sums with aggregation
  /// weight `weight` (uniform 1.0, task-size proportional, or
  /// staleness-discounted — the caller decides). `update` must match the
  /// reference layout and may be destroyed as soon as this returns.
  ///
  /// Returns the participant's per-unit |delta| magnitudes against the
  /// reference (FedDA; empty for FedAvg): the pseudo-gradient input of the
  /// post-round mask update, computed here so no caller ever needs all
  /// updates alive at once.
  std::vector<double> Accumulate(int client, double weight,
                                 const tensor::ParameterStore& update);

  /// Participants folded in so far.
  int num_consumed() const { return num_consumed_; }

  /// Writes the aggregate into `global` and flags every group written in
  /// `groups_updated` (indexed by group id). Groups with no contributors
  /// keep their values: `global` must hold the reference values on entry
  /// (passing the same store `reference` points at is the intended use —
  /// the server no longer needs a broadcast copy, because no global value
  /// is overwritten before Finalize()). Call at most once.
  void Finalize(tensor::ParameterStore* global,
                std::vector<uint8_t>* groups_updated);

 private:
  const tensor::ParameterStore* reference_;
  const ActivationState* state_;
  Config config_;
  std::vector<uint8_t> group_selected_;  // FedAvg round subset
  /// Whole-group accumulators (FedAvg groups; FedDA non-scalar path), empty
  /// tensors for groups never aggregated. Allocated lazily on first
  /// contribution so an aggressively masked round costs only the groups it
  /// touches.
  std::vector<tensor::Tensor> sums_;
  std::vector<double> total_weight_;
  /// Scalar-granularity accumulators for disentangled groups (double, to
  /// match the old per-scalar double accumulation exactly).
  std::vector<std::vector<double>> scalar_sums_;
  std::vector<std::vector<double>> scalar_weights_;
  int num_consumed_ = 0;
  bool finalized_ = false;
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_AGGREGATOR_H_
