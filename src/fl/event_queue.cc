#include "fl/event_queue.h"

#include <algorithm>

#include "core/check.h"

namespace fedda::fl {

namespace {

/// Max-heap comparator for std::*_heap (which keep the largest element at
/// the front): `a` orders after `b` when `a` pops *later*, i.e. has a larger
/// (time, seq) key. seq is unique per queue, so this is a total order.
bool PopsLater(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kArrival:
      return "arrival";
    case EventKind::kDeparture:
      return "departure";
    case EventKind::kReactivation:
      return "reactivation";
  }
  return "unknown";
}

uint64_t EventQueue::Push(double time, EventKind kind, int client,
                          int round) {
  Event event;
  event.time = time;
  event.kind = kind;
  event.client = client;
  event.round = round;
  event.seq = next_seq_++;
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), PopsLater);
  return event.seq;
}

const Event& EventQueue::Peek() const {
  FEDDA_CHECK(!heap_.empty()) << "Peek on empty EventQueue";
  return heap_.front();
}

Event EventQueue::Pop() {
  FEDDA_CHECK(!heap_.empty()) << "Pop on empty EventQueue";
  std::pop_heap(heap_.begin(), heap_.end(), PopsLater);
  const Event event = heap_.back();
  heap_.pop_back();
  now_ = event.time;
  return event;
}

}  // namespace fedda::fl
