#ifndef FEDDA_FL_TRANSPORT_H_
#define FEDDA_FL_TRANSPORT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "fl/wire.h"

namespace fedda::fl {

/// Boundary between the synchronous round loop and a real network.
///
/// The runner normally trains clients in-process. With a Transport plugged
/// into FlOptions::transport, the per-participant work of a round — train on
/// the current global, perturb, serialize the masked uplink — executes in a
/// remote process instead, and only fl/wire.h payloads cross the boundary.
/// The contract is bit-identity: a remote round must return exactly the
/// uplink bytes the in-process round would have built, so a seeded
/// multi-process run reproduces the in-process round history verbatim. The
/// runner makes that possible by shipping each participant the three inputs
/// local training consumes: the split RNG stream (as raw engine state, in
/// the same split order TrainClients uses), the activation masks in force,
/// and a resync payload that makes the remote mirror of the global store
/// exact (see RoundLoop's mirror tracker in runner.cc).

/// Everything one participant needs to execute one synchronous round
/// remotely.
struct TransportTask {
  int client = 0;
  int round = 0;
  /// Engine state of the client's round RNG (core::Rng::SaveState), split
  /// from the server's round stream in participant order. The remote side
  /// restores it with Rng::FromState and must draw in exactly the order the
  /// in-process runner would (training first, then DP noise).
  std::array<uint64_t, 4> rng_state{};
  /// True for FedDA algorithms: the uplink is masked (`mask_bits`), not
  /// dense (`selected_groups`).
  bool fedda = false;
  /// FedDA: the client's per-unit request mask in force this round
  /// (ActivationState::ClientMask), installed remotely via SetClientMask so
  /// both sides build the identical BuildUplinkPayload.
  std::vector<uint8_t> mask_bits;
  /// FedAvg: the round's server-sampled group subset (rate D) for the dense
  /// uplink. Ascending.
  std::vector<int> selected_groups;
  /// Downlink payload resynchronizing the remote mirror with the global
  /// store — full group coverage, unlike the *charged* downlink, which
  /// bills only masked requests (accounting is unchanged by the transport).
  /// May be header-only when the mirror is already current.
  WirePayload sync;
};

/// What came back (or didn't) for one task.
struct TransportReply {
  /// False when the client departed mid-round: the connection hit EOF, the
  /// read deadline expired, or a frame failed to parse. The runner records
  /// a departure and invalidates the client's downlink caches.
  bool ok = false;
  /// Mean local training loss (Client::Update's return).
  double loss = 0.0;
  /// The client's serialized uplink — byte-identical to what the in-process
  /// round would have built from the same masks and weights.
  WirePayload uplink;
  /// Measured wall-clock seconds from task send to reply receipt. Pure
  /// observability: never feeds back into results.
  double rtt_sec = 0.0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Executes one round: delivers `tasks` (one per participant) and collects
  /// one reply per task, in task order. Must not throw and must not block
  /// forever — a dead or silent peer becomes `ok == false` after the
  /// implementation's read deadline.
  virtual std::vector<TransportReply> ExecuteRound(
      const std::vector<TransportTask>& tasks) = 0;

  /// Whether `client`'s peer can still receive tasks. The runner filters
  /// known-dead clients out of a round's participants *after* all selection
  /// RNG draws, so departures never perturb the random stream of the
  /// surviving clients.
  virtual bool ClientAlive(int client) const = 0;
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_TRANSPORT_H_
