#ifndef FEDDA_FL_NETWORK_MODEL_H_
#define FEDDA_FL_NETWORK_MODEL_H_

namespace fedda::fl {

/// Simulated communication/compute constants shared by the post-hoc timing
/// estimate (fl/network.h SimulateTiming) and the semi-async runner's
/// event-time source (fl/runner.h SemiAsyncOptions): both must charge the
/// same model so "simulated seconds" mean the same thing everywhere.
struct NetworkModel {
  /// float32 payloads.
  double bytes_per_scalar = 4.0;
  /// Client uplink bandwidth (the FL bottleneck in practice).
  double uplink_bytes_per_sec = 1.0e6;
  /// Client downlink bandwidth (requested-group broadcast).
  double downlink_bytes_per_sec = 4.0e6;
  /// Fixed per-round overhead: handshakes, scheduling, aggregation.
  double round_latency_sec = 0.1;
  /// Local compute time per client per local epoch.
  double compute_sec_per_epoch = 0.5;
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_NETWORK_MODEL_H_
