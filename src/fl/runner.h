#ifndef FEDDA_FL_RUNNER_H_
#define FEDDA_FL_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fl/activation.h"
#include "fl/client.h"
#include "graph/hetero_graph.h"
#include "hgn/link_prediction.h"

namespace fedda::obs {
class MetricsRegistry;
class Tracer;
}  // namespace fedda::obs

namespace fedda::fl {

/// Federated algorithms reproduced from the paper.
enum class FlAlgorithm {
  /// Vanilla FedAvg, optionally with the preliminary study's random client
  /// activation rate C and parameter activation rate D (Fig. 2).
  kFedAvg,
  /// FedDA with the Restart reactivation strategy (beta_r).
  kFedDaRestart,
  /// FedDA with the Explore reactivation strategy (beta_e).
  kFedDaExplore,
};

const char* FlAlgorithmName(FlAlgorithm algorithm);

struct FlOptions {
  FlAlgorithm algorithm = FlAlgorithm::kFedAvg;
  /// Communication rounds T (paper: 40).
  int rounds = 40;
  /// FedAvg-only: fraction C of clients randomly activated per round.
  double client_fraction = 1.0;
  /// FedAvg-only: fraction D of parameter groups randomly aggregated per
  /// round (unselected groups keep their previous global value and are not
  /// transmitted).
  double param_fraction = 1.0;
  /// FedDA parameter-activation options (granularity, alpha).
  ActivationOptions activation;
  /// Restart threshold beta_r (paper best: 0.4).
  double beta_r = 0.4;
  /// Explore floor beta_e (paper best: 0.667).
  double beta_e = 0.667;
  hgn::TrainOptions local;
  hgn::EvalOptions eval;
  /// Evaluate the global model on the test set every round (required for
  /// convergence curves; disable for the fastest headline runs).
  bool eval_every_round = true;
  /// Robustness extension: each selected participant independently fails to
  /// respond with this probability (straggler/crash injection). A failed
  /// client trains nothing, transmits nothing, and keeps its activation
  /// state; a round where everyone fails performs no aggregation.
  double client_failure_prob = 0.0;
  /// Privacy extension (the paper's Sec. 7 future work): standard deviation
  /// of Gaussian noise added to every scalar of each client's returned
  /// weights (local-DP-style perturbation). 0 disables (and draws no
  /// randomness, keeping seeded runs bit-identical to before the feature).
  double dp_noise_std = 0.0;
  /// Worker threads for client updates within a round (0 = sequential).
  /// Results are bit-identical to sequential execution: every client's RNG
  /// stream is split from the round RNG before any update starts.
  int worker_threads = 0;
  /// Weighted aggregation p_i proportional to each client's task-edge count
  /// (the classic FedAvg n_k/n weighting). The paper deliberately uses
  /// uniform p_i = 1/M because the server must not learn local data sizes
  /// (Sec. 5.1.2); this option exists to quantify what that privacy choice
  /// costs.
  bool weighted_aggregation = false;
  /// Optional observability sinks (both may be null; null disables with no
  /// measurable overhead). The tracer receives round/phase/client spans and
  /// is forwarded into TrainOptions/EvalOptions so the tensor kernels tag
  /// their time too; the registry receives fl.* counters mirroring the
  /// RoundRecord byte/scalar fields. Neither touches RNG state: a traced
  /// run is bit-identical to an untraced one (trace_determinism_test).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-round telemetry.
struct RoundRecord {
  int round = 0;
  double auc = 0.0;
  double mrr = 0.0;
  double mean_local_loss = 0.0;
  int participants = 0;
  /// Uplink transmitted this round (summed over participants).
  int64_t uplink_groups = 0;
  int64_t uplink_scalars = 0;
  /// Largest single-participant uplink this round. A synchronous round ends
  /// only when its slowest participant finishes, so timing models must
  /// charge this straggler value, not the per-participant mean — under
  /// FedDA's per-client masks the two differ materially.
  int64_t max_uplink_scalars = 0;
  /// Measured wire bytes this round (fl/wire.h payloads, including headers
  /// and bit-packed mask overhead), summed over participants and the
  /// per-participant straggler maxima. Downlink covers only the groups each
  /// participant requests and does not already hold current — the server
  /// never re-ships unchanged groups — so `downlink_scalars` (full-group
  /// coverage shipped down) is at most participants * model scalars and
  /// usually far less. A record with `participants > 0` but zero bytes
  /// predates the wire format (SimulateTiming falls back to its legacy
  /// scalar model); `participants == 0` is a genuinely all-failed round,
  /// which moves no bytes at all and is charged latency only.
  int64_t uplink_bytes = 0;
  int64_t max_uplink_bytes = 0;
  int64_t downlink_scalars = 0;
  int64_t max_downlink_scalars = 0;
  int64_t downlink_bytes = 0;
  int64_t max_downlink_bytes = 0;
  /// Active-set size after this round's (de/re)activation.
  int active_after_round = 0;
};

struct FlRunResult {
  std::vector<RoundRecord> history;
  double final_auc = 0.0;
  double final_mrr = 0.0;
  int64_t total_uplink_groups = 0;
  int64_t total_uplink_scalars = 0;
  /// Sum over rounds of RoundRecord::max_uplink_scalars: the uplink volume
  /// on the straggler-bound critical path of a synchronous run.
  int64_t total_max_uplink_scalars = 0;
  /// Measured wire-format totals (sums of the per-round RoundRecord
  /// fields). Bytes include payload headers and mask overhead; the
  /// max_downlink total is the straggler-bound downlink coverage.
  int64_t total_uplink_bytes = 0;
  int64_t total_downlink_bytes = 0;
  int64_t total_downlink_scalars = 0;
  int64_t total_max_downlink_scalars = 0;
};

/// Orchestrates one federated training run (Algorithm 1): owns the clients,
/// drives rounds, performs masked aggregation (Eq. 6), updates activation
/// state, and evaluates the global model on the global test set.
class FederatedRunner {
 public:
  /// Task-agnostic evaluation hook: scores the global model and returns
  /// (primary, secondary) metrics recorded as RoundRecord::auc / ::mrr.
  using Evaluator =
      std::function<std::pair<double, double>(tensor::ParameterStore*,
                                              core::Rng*)>;

  /// Link-prediction runner (the paper's setting). All pointers must
  /// outlive the runner; `global_graph`/`test_edges` define the evaluation
  /// task.
  FederatedRunner(const hgn::SimpleHgn* model,
                  const graph::HeteroGraph* global_graph,
                  const std::vector<graph::EdgeId>* test_edges,
                  std::vector<std::unique_ptr<Client>> clients,
                  FlOptions options);

  /// Task-agnostic runner: clients may train any TrainableTask and
  /// `evaluator` scores the aggregated model each round.
  FederatedRunner(std::vector<std::unique_ptr<Client>> clients,
                  Evaluator evaluator, FlOptions options);

  /// Runs `options.rounds` rounds starting from the weights in
  /// `global_store` (which receives the final weights).
  FlRunResult Run(tensor::ParameterStore* global_store, core::Rng* rng);

  int num_clients() const { return static_cast<int>(clients_.size()); }
  const FlOptions& options() const { return options_; }

 private:
  /// Participants for round `t` per algorithm.
  std::vector<int> SelectParticipants(ActivationState* state, core::Rng* rng);

  /// Masked mean aggregation into `global_store`; returns per-participant
  /// per-unit |delta| magnitudes for the subsequent mask update. Sets
  /// `groups_updated[g]` to 1 for every group the aggregation wrote (the
  /// downlink version tracking only re-ships groups whose global value
  /// advanced).
  std::vector<std::vector<double>> AggregateAndMeasure(
      const std::vector<int>& participants,
      const tensor::ParameterStore& broadcast,
      const std::vector<int>& selected_groups, const ActivationState& state,
      tensor::ParameterStore* global_store,
      std::vector<uint8_t>* groups_updated) const;

  /// Scores `global_store`; uses evaluator_ when set, else the built-in
  /// link-prediction evaluation (which borrows `pool` for its forward pass).
  std::pair<double, double> EvaluateGlobal(tensor::ParameterStore* store,
                                           core::Rng* rng,
                                           core::ThreadPool* pool) const;

  const hgn::SimpleHgn* model_ = nullptr;
  const graph::HeteroGraph* global_graph_ = nullptr;
  const std::vector<graph::EdgeId>* test_edges_ = nullptr;
  std::vector<std::unique_ptr<Client>> clients_;
  FlOptions options_;
  hgn::MpStructure global_mp_;
  Evaluator evaluator_;
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_RUNNER_H_
