#ifndef FEDDA_FL_RUNNER_H_
#define FEDDA_FL_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fl/activation.h"
#include "fl/client.h"
#include "fl/event_queue.h"
#include "fl/network_model.h"
#include "graph/hetero_graph.h"
#include "hgn/link_prediction.h"

namespace fedda::obs {
class MetricsRegistry;
class Tracer;
}  // namespace fedda::obs

namespace fedda::fl {

class Transport;

/// Federated algorithms reproduced from the paper.
enum class FlAlgorithm {
  /// Vanilla FedAvg, optionally with the preliminary study's random client
  /// activation rate C and parameter activation rate D (Fig. 2).
  kFedAvg,
  /// FedDA with the Restart reactivation strategy (beta_r).
  kFedDaRestart,
  /// FedDA with the Explore reactivation strategy (beta_e).
  kFedDaExplore,
};

const char* FlAlgorithmName(FlAlgorithm algorithm);

/// Server aggregation discipline.
enum class AggregationMode {
  /// Classic synchronous rounds: every participant trains on the round's
  /// broadcast and the round ends when the last one is aggregated. Seeded
  /// histories are bit-identical to the pre-event-queue runner.
  kSynchronous,
  /// Buffered semi-async: client updates arrive at virtual times derived
  /// from the NetworkModel, the server aggregates the first
  /// `SemiAsyncOptions::buffer_size` arrivals per round, and updates that
  /// straggle into later rounds are folded in with a staleness-discounted
  /// weight instead of gating the round.
  kSemiAsync,
};

/// Event-driven server options (AggregationMode::kSemiAsync).
struct SemiAsyncOptions {
  /// Aggregate as soon as this many updates have arrived (FedBuff-style K).
  /// <= 0 drains every event in flight each round, which still reorders
  /// arrivals by virtual time but never leaves an update buffered.
  int buffer_size = 0;
  /// Staleness discount exponent rho: an update trained on the broadcast of
  /// round t0 and aggregated in round t contributes with weight multiplier
  /// 1 / (1 + (t - t0))^rho. 0 disables the discount.
  double staleness_exponent = 0.5;
  /// Event-time source: per-client arrival times are
  ///   latency + downlink_bytes/down_bw + E*compute*speed + uplink_bytes/up_bw
  /// using this model's constants and the measured wire bytes.
  NetworkModel network;
  /// Per-client duration multipliers (straggler injection). Empty = all
  /// 1.0; otherwise must have one entry per client. A value of 8.0 makes
  /// that client's rounds 8x slower in virtual time.
  std::vector<double> client_speed;
};

struct FlOptions {
  FlAlgorithm algorithm = FlAlgorithm::kFedAvg;
  /// Communication rounds T (paper: 40).
  int rounds = 40;
  /// FedAvg-only: fraction C of clients randomly activated per round.
  double client_fraction = 1.0;
  /// FedAvg-only: fraction D of parameter groups randomly aggregated per
  /// round (unselected groups keep their previous global value and are not
  /// transmitted).
  double param_fraction = 1.0;
  /// FedDA parameter-activation options (granularity, alpha).
  ActivationOptions activation;
  /// Restart threshold beta_r (paper best: 0.4).
  double beta_r = 0.4;
  /// Explore floor beta_e (paper best: 0.667).
  double beta_e = 0.667;
  hgn::TrainOptions local;
  hgn::EvalOptions eval;
  /// Evaluate the global model on the test set every round (required for
  /// convergence curves; disable for the fastest headline runs).
  bool eval_every_round = true;
  /// Robustness extension: each selected participant independently fails to
  /// respond with this probability (straggler/crash injection). A failed
  /// client trains nothing, transmits nothing, and keeps its activation
  /// state; a round where everyone fails performs no aggregation.
  double client_failure_prob = 0.0;
  /// Privacy extension (the paper's Sec. 7 future work): standard deviation
  /// of Gaussian noise added to every scalar of each client's returned
  /// weights (local-DP-style perturbation). 0 disables (and draws no
  /// randomness, keeping seeded runs bit-identical to before the feature).
  double dp_noise_std = 0.0;
  /// Worker threads for client updates within a round (0 = sequential).
  /// Results are bit-identical to sequential execution: every client's RNG
  /// stream is split from the round RNG before any update starts.
  int worker_threads = 0;
  /// Server aggregation discipline; kSemiAsync turns on the event-driven
  /// buffered server (see `semi_async`). All event-queue operations happen
  /// on the coordinating thread, so semi-async runs stay bit-identical
  /// across worker_threads settings too.
  AggregationMode aggregation_mode = AggregationMode::kSynchronous;
  SemiAsyncOptions semi_async;
  /// Weighted aggregation p_i proportional to each client's task-edge count
  /// (the classic FedAvg n_k/n weighting). The paper deliberately uses
  /// uniform p_i = 1/M because the server must not learn local data sizes
  /// (Sec. 5.1.2); this option exists to quantify what that privacy choice
  /// costs.
  bool weighted_aggregation = false;
  /// Optional transport (fl/transport.h) executing each participant's round
  /// in a remote process; null (the default) trains in-process. Synchronous
  /// mode only. The contract is bit-identity: with live peers, a seeded
  /// remote run's history equals the in-process history, because the runner
  /// ships each participant its split RNG state, its masks, and a mirror
  /// resync of the global store, and aggregates the returned wire payloads
  /// in participant order. A peer that dies mid-round is recorded as a
  /// departure (RoundRecord::departures) and its downlink caches are
  /// invalidated, exactly like a semi-async departure event.
  Transport* transport = nullptr;
  /// Optional observability sinks (both may be null; null disables with no
  /// measurable overhead). The tracer receives round/phase/client spans and
  /// is forwarded into TrainOptions/EvalOptions so the tensor kernels tag
  /// their time too; the registry receives fl.* counters mirroring the
  /// RoundRecord byte/scalar fields. Neither touches RNG state: a traced
  /// run is bit-identical to an untraced one (trace_determinism_test).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-round telemetry.
struct RoundRecord {
  int round = 0;
  double auc = 0.0;
  double mrr = 0.0;
  /// Mean training loss over the updates aggregated this round. NaN when
  /// nothing was aggregated (everyone failed, or a semi-async round drained
  /// no arrivals): a loss of 0.0 would read as a perfect round in CSV /
  /// time-to-accuracy output. CsvWriter renders NaN as an empty field.
  double mean_local_loss = 0.0;
  /// Updates aggregated this round (sync: responding participants;
  /// semi-async: arrivals consumed from the buffer).
  int participants = 0;
  /// Uplink transmitted this round (summed over participants).
  int64_t uplink_groups = 0;
  int64_t uplink_scalars = 0;
  /// Largest single-participant uplink this round. A synchronous round ends
  /// only when its slowest participant finishes, so timing models must
  /// charge this straggler value, not the per-participant mean — under
  /// FedDA's per-client masks the two differ materially.
  int64_t max_uplink_scalars = 0;
  /// Measured wire bytes this round (fl/wire.h payloads, including headers
  /// and bit-packed mask overhead), summed over participants and the
  /// per-participant straggler maxima. Downlink covers only the groups each
  /// participant requests and does not already hold current — the server
  /// never re-ships unchanged groups — so `downlink_scalars` (full-group
  /// coverage shipped down) is at most participants * model scalars and
  /// usually far less. A record with `participants > 0` but zero bytes
  /// predates the wire format (SimulateTiming falls back to its legacy
  /// scalar model); `participants == 0` is a genuinely all-failed round,
  /// which moves no bytes at all and is charged latency only.
  int64_t uplink_bytes = 0;
  int64_t max_uplink_bytes = 0;
  int64_t downlink_scalars = 0;
  int64_t max_downlink_scalars = 0;
  int64_t downlink_bytes = 0;
  int64_t max_downlink_bytes = 0;
  /// Active-set size after this round's (de/re)activation.
  int active_after_round = 0;
  /// Semi-async only (0 in synchronous mode): clients whose training
  /// started this round, mean staleness in rounds over the aggregated
  /// updates, and the virtual time at which this round's buffer filled.
  int started = 0;
  /// Updates lost to a client dropping out while in flight. Semi-async
  /// departure events, and — under a transport — synchronous participants
  /// whose process died mid-round (EOF/timeout before their reply).
  int departures = 0;
  double mean_staleness = 0.0;
  double virtual_time_sec = 0.0;
  /// The server forced a full reactivation because dynamic deactivation
  /// emptied the active set outside any reactivation window (previously a
  /// process abort).
  bool forced_reactivation = false;
};

struct FlRunResult {
  /// The discipline the run used, copied from FlOptions by Run(). Semi-async
  /// histories already carry *measured* virtual network time per round
  /// (RoundRecord::virtual_time_sec, built from the same NetworkModel
  /// constants); feeding them to the post-hoc SimulateTiming estimator
  /// would charge every transfer twice, so SimulateTiming rejects them by
  /// checking this field (the event list cannot serve as the discriminator:
  /// synchronous runs also record kReactivation events).
  AggregationMode aggregation_mode = AggregationMode::kSynchronous;
  std::vector<RoundRecord> history;
  double final_auc = 0.0;
  double final_mrr = 0.0;
  int64_t total_uplink_groups = 0;
  int64_t total_uplink_scalars = 0;
  /// Sum over rounds of RoundRecord::max_uplink_scalars: the uplink volume
  /// on the straggler-bound critical path of a synchronous run.
  int64_t total_max_uplink_scalars = 0;
  /// Measured wire-format totals (sums of the per-round RoundRecord
  /// fields). Bytes include payload headers and mask overhead; the
  /// max_downlink total is the straggler-bound downlink coverage.
  int64_t total_uplink_bytes = 0;
  int64_t total_downlink_bytes = 0;
  int64_t total_downlink_scalars = 0;
  int64_t total_max_downlink_scalars = 0;
  /// Semi-async only: every event the server processed, in pop order. The
  /// sequence is a pure function of the seed (EventQueue ties break on push
  /// order), so it doubles as the determinism witness across worker_threads
  /// settings. Empty in synchronous mode.
  std::vector<Event> events;
};

/// Orchestrates one federated training run (Algorithm 1): owns the clients,
/// drives rounds, performs masked aggregation (Eq. 6), updates activation
/// state, and evaluates the global model on the global test set.
class FederatedRunner {
 public:
  /// Task-agnostic evaluation hook: scores the global model and returns
  /// (primary, secondary) metrics recorded as RoundRecord::auc / ::mrr.
  using Evaluator =
      std::function<std::pair<double, double>(tensor::ParameterStore*,
                                              core::Rng*)>;

  /// Link-prediction runner (the paper's setting). All pointers must
  /// outlive the runner; `global_graph`/`test_edges` define the evaluation
  /// task.
  FederatedRunner(const hgn::SimpleHgn* model,
                  const graph::HeteroGraph* global_graph,
                  const std::vector<graph::EdgeId>* test_edges,
                  std::vector<std::unique_ptr<Client>> clients,
                  FlOptions options);

  /// Task-agnostic runner: clients may train any TrainableTask and
  /// `evaluator` scores the aggregated model each round.
  FederatedRunner(std::vector<std::unique_ptr<Client>> clients,
                  Evaluator evaluator, FlOptions options);

  /// Runs `options.rounds` rounds starting from the weights in
  /// `global_store` (which receives the final weights).
  FlRunResult Run(tensor::ParameterStore* global_store, core::Rng* rng);

  int num_clients() const { return static_cast<int>(clients_.size()); }
  const FlOptions& options() const { return options_; }

 private:
  struct RoundLoop;  // shared per-run state for the round drivers

  /// Participants for round `t` per algorithm.
  std::vector<int> SelectParticipants(ActivationState* state, core::Rng* rng);

  /// Aggregation weight of one participant: uniform 1.0 (the paper's
  /// privacy-preserving p_i = 1/M, renormalized per unit over its
  /// contributors) or task-size proportional under weighted_aggregation.
  double AggregationWeight(int client) const;

  /// Post-aggregation FedDA activation update (masks, alpha deactivation,
  /// Restart/Explore reactivation) for the clients whose updates were
  /// aggregated this round.
  void UpdateActivation(const std::vector<int>& aggregated,
                        const std::vector<std::vector<double>>& magnitudes,
                        ActivationState* state, core::Rng* rng);

  /// Scores `global_store`; uses evaluator_ when set, else the built-in
  /// link-prediction evaluation (which borrows `pool` for its forward pass).
  std::pair<double, double> EvaluateGlobal(tensor::ParameterStore* store,
                                           core::Rng* rng,
                                           core::ThreadPool* pool) const;

  const hgn::SimpleHgn* model_ = nullptr;
  const graph::HeteroGraph* global_graph_ = nullptr;
  const std::vector<graph::EdgeId>* test_edges_ = nullptr;
  std::vector<std::unique_ptr<Client>> clients_;
  FlOptions options_;
  hgn::MpStructure global_mp_;
  Evaluator evaluator_;
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_RUNNER_H_
