#include "fl/baselines.h"

namespace fedda::fl {

BaselineResult RunGlobalBaseline(const hgn::SimpleHgn* model,
                                 const graph::HeteroGraph* global_graph,
                                 const std::vector<graph::EdgeId>& train_edges,
                                 const std::vector<graph::EdgeId>& test_edges,
                                 int rounds, const hgn::TrainOptions& options,
                                 const hgn::EvalOptions& eval_options,
                                 tensor::ParameterStore* store, core::Rng* rng,
                                 bool eval_every_round) {
  FEDDA_CHECK_GT(rounds, 0);
  hgn::LinkPredictionTask task(model, global_graph, train_edges);
  core::Rng eval_rng = rng->Split();

  // Centralized training keeps one optimizer across all rounds.
  std::unique_ptr<tensor::Optimizer> optimizer;
  if (options.use_adam) {
    optimizer = std::make_unique<tensor::Adam>(
        options.learning_rate, 0.9f, 0.999f, 1e-8f, options.weight_decay);
  } else {
    optimizer = std::make_unique<tensor::Sgd>(options.learning_rate,
                                              options.weight_decay);
  }

  BaselineResult result;
  for (int round = 0; round < rounds; ++round) {
    core::Rng round_rng = rng->Split();
    const double loss =
        task.TrainRound(store, options, &round_rng, optimizer.get());
    if (eval_every_round || round == rounds - 1) {
      const hgn::EvalResult eval = hgn::EvaluateLinkPrediction(
          *model, *global_graph, task.mp(), test_edges, store, eval_options,
          &eval_rng);
      RoundRecord record;
      record.round = round;
      record.auc = eval.auc;
      record.mrr = eval.mrr;
      record.mean_local_loss = loss;
      record.participants = 1;
      result.history.push_back(record);
      result.auc = eval.auc;
      result.mrr = eval.mrr;
    }
  }
  return result;
}

BaselineResult RunLocalBaseline(
    const hgn::SimpleHgn* model, const graph::HeteroGraph* global_graph,
    const std::vector<graph::EdgeId>& test_edges,
    std::vector<std::unique_ptr<Client>>* clients, int rounds,
    const hgn::TrainOptions& options, const hgn::EvalOptions& eval_options,
    core::Rng* rng) {
  FEDDA_CHECK(clients != nullptr && !clients->empty());
  FEDDA_CHECK_GT(rounds, 0);
  const hgn::MpStructure global_mp = model->BuildStructure(*global_graph);
  core::Rng eval_rng = rng->Split();

  BaselineResult result;
  double auc_sum = 0.0, mrr_sum = 0.0;
  for (auto& client : *clients) {
    core::Rng client_rng = rng->Split();
    for (int round = 0; round < rounds; ++round) {
      client->TrainLocalOnly(options, &client_rng);
    }
    const hgn::EvalResult eval = hgn::EvaluateLinkPrediction(
        *model, *global_graph, global_mp, test_edges,
        client->mutable_params(), eval_options, &eval_rng);
    auc_sum += eval.auc;
    mrr_sum += eval.mrr;
  }
  result.auc = auc_sum / static_cast<double>(clients->size());
  result.mrr = mrr_sum / static_cast<double>(clients->size());
  return result;
}

}  // namespace fedda::fl
