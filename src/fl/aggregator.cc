#include "fl/aggregator.h"

#include <cmath>
#include <utility>

#include "core/check.h"

namespace fedda::fl {

using tensor::ParameterStore;
using tensor::Tensor;

StreamingAggregator::StreamingAggregator(const ParameterStore* reference,
                                         const ActivationState* state,
                                         std::vector<int> selected_groups,
                                         Config config)
    : reference_(reference), state_(state), config_(config) {
  FEDDA_CHECK(reference_ != nullptr);
  const size_t num_groups = static_cast<size_t>(reference_->num_groups());
  if (config_.fedda) {
    FEDDA_CHECK(state_ != nullptr) << "FedDA aggregation needs masks";
  } else {
    group_selected_.assign(num_groups, 0);
    for (int gid : selected_groups) {
      group_selected_[static_cast<size_t>(gid)] = 1;
    }
  }
  sums_.resize(num_groups);
  total_weight_.assign(num_groups, 0.0);
  if (config_.fedda && config_.scalar_granularity) {
    scalar_sums_.resize(num_groups);
    scalar_weights_.resize(num_groups);
  }
}

std::vector<double> StreamingAggregator::Accumulate(
    int client, double weight, const ParameterStore& update) {
  FEDDA_CHECK(!finalized_);
  std::vector<double> magnitudes;
  if (config_.fedda) {
    magnitudes.assign(static_cast<size_t>(state_->num_units()), 0.0);
  }

  for (int gid = 0; gid < reference_->num_groups(); ++gid) {
    const size_t g = static_cast<size_t>(gid);
    const Tensor& cv = update.value(gid);

    if (!config_.fedda) {
      // FedAvg: dense contribution to every group in the round's subset.
      if (!group_selected_[g]) continue;
      if (sums_[g].size() == 0) sums_[g] = Tensor(cv.rows(), cv.cols());
      sums_[g].Axpy(static_cast<float>(weight), cv);
      total_weight_[g] += weight;
      continue;
    }

    const int64_t first_unit = state_->GroupFirstUnit(gid);
    const bool maskable = first_unit >= 0;

    if (!maskable || !config_.scalar_granularity) {
      // Whole-group path: groups outside [N_d] take everyone; maskable
      // groups at tensor granularity take only clients whose mask is on.
      if (maskable && !state_->UnitActive(client, first_unit)) continue;
      if (sums_[g].size() == 0) sums_[g] = Tensor(cv.rows(), cv.cols());
      sums_[g].Axpy(static_cast<float>(weight), cv);
      total_weight_[g] += weight;
      if (maskable) {
        // Tensor-granularity magnitude: mean |delta| over the group.
        const Tensor delta = cv.Sub(reference_->value(gid));
        magnitudes[static_cast<size_t>(first_unit)] = delta.AbsMean();
      }
      continue;
    }

    // Scalar granularity on a disentangled group: per-scalar contributors.
    const int64_t size = cv.size();
    const Tensor& old = reference_->value(gid);
    std::vector<double>& sums = scalar_sums_[g];
    std::vector<double>& weights = scalar_weights_[g];
    for (int64_t s = 0; s < size; ++s) {
      if (!state_->UnitActive(client, first_unit + s)) continue;
      if (sums.empty()) {
        sums.assign(static_cast<size_t>(size), 0.0);
        weights.assign(static_cast<size_t>(size), 0.0);
      }
      const float value = cv.data()[s];
      sums[static_cast<size_t>(s)] += weight * value;
      weights[static_cast<size_t>(s)] += weight;
      magnitudes[static_cast<size_t>(first_unit + s)] =
          std::fabs(value - old.data()[s]);
    }
  }
  ++num_consumed_;
  return magnitudes;
}

void StreamingAggregator::Finalize(ParameterStore* global,
                                   std::vector<uint8_t>* groups_updated) {
  FEDDA_CHECK(!finalized_);
  finalized_ = true;
  groups_updated->assign(static_cast<size_t>(global->num_groups()), 0);

  for (int gid = 0; gid < global->num_groups(); ++gid) {
    const size_t g = static_cast<size_t>(gid);

    if (config_.fedda && config_.scalar_granularity &&
        state_->GroupFirstUnit(gid) >= 0) {
      // Scalar-granularity group: write contributed scalars, keep the rest.
      const std::vector<double>& sums = scalar_sums_[g];
      if (sums.empty()) continue;  // no client contributed any scalar
      const std::vector<double>& weights = scalar_weights_[g];
      Tensor& target = global->value(gid);
      const Tensor& old = reference_->value(gid);
      for (int64_t s = 0; s < target.size(); ++s) {
        if (weights[static_cast<size_t>(s)] > 0.0) {
          target.data()[s] = static_cast<float>(
              sums[static_cast<size_t>(s)] / weights[static_cast<size_t>(s)]);
        } else {
          target.data()[s] = old.data()[s];
        }
      }
      (*groups_updated)[g] = 1;
      continue;
    }

    // Whole-group path (FedAvg and FedDA alike): groups with no
    // contributors keep their previous global value.
    if (sums_[g].size() == 0 || total_weight_[g] <= 0.0) continue;
    sums_[g].Scale(1.0f / static_cast<float>(total_weight_[g]));
    global->value(gid) = std::move(sums_[g]);
    (*groups_updated)[g] = 1;
  }
}

}  // namespace fedda::fl
