#include "fl/activation.h"

#include <algorithm>

#include "core/binary_io.h"
#include "core/check.h"
#include "fl/wire.h"

namespace fedda::fl {

double ComputeThreshold(std::vector<double>* magnitudes,
                        const ActivationOptions& options) {
  FEDDA_CHECK(!magnitudes->empty());
  switch (options.threshold_rule) {
    case ThresholdRule::kMean: {
      double total = 0.0;
      for (double m : *magnitudes) total += m;
      return total / static_cast<double>(magnitudes->size());
    }
    case ThresholdRule::kMedian: {
      const size_t n = magnitudes->size();
      const size_t mid = n / 2;
      std::nth_element(magnitudes->begin(),
                       magnitudes->begin() + static_cast<long>(mid),
                       magnitudes->end());
      const double upper = (*magnitudes)[mid];
      if (n % 2 == 1) return upper;
      // Even-sized contributor sets: average the two middle values. Taking
      // the upper-middle element alone biases deactivation upward (more
      // clients land strictly below the threshold than the median implies).
      const double lower = *std::max_element(
          magnitudes->begin(), magnitudes->begin() + static_cast<long>(mid));
      return 0.5 * (lower + upper);
    }
    case ThresholdRule::kPercentile: {
      const double q = options.threshold_percentile;
      FEDDA_CHECK(q >= 0.0 && q <= 1.0);
      const size_t rank = std::min(
          magnitudes->size() - 1,
          static_cast<size_t>(q * static_cast<double>(magnitudes->size())));
      std::nth_element(magnitudes->begin(),
                       magnitudes->begin() + static_cast<long>(rank),
                       magnitudes->end());
      return (*magnitudes)[rank];
    }
  }
  return 0.0;
}

ActivationState::ActivationState(int num_clients,
                                 const tensor::ParameterStore& reference,
                                 const ActivationOptions& options)
    : num_clients_(num_clients), options_(options) {
  FEDDA_CHECK_GT(num_clients, 0);
  FEDDA_CHECK(options.alpha >= 0.0 && options.alpha <= 1.0);

  total_groups_ = reference.num_groups();
  total_scalars_ = reference.num_scalars();
  group_sizes_.resize(static_cast<size_t>(total_groups_));
  group_disentangled_.resize(static_cast<size_t>(total_groups_));
  group_first_unit_.assign(static_cast<size_t>(total_groups_), -1);

  for (int gid = 0; gid < reference.num_groups(); ++gid) {
    const size_t s = static_cast<size_t>(gid);
    group_sizes_[s] = reference.value(gid).size();
    group_disentangled_[s] = reference.info(gid).disentangled;
    if (!group_disentangled_[s]) {
      ++nondisentangled_groups_;
      nondisentangled_scalars_ += group_sizes_[s];
      continue;
    }
    group_first_unit_[s] = num_units_;
    const int64_t units =
        options.granularity == ActivationGranularity::kTensor
            ? 1
            : group_sizes_[s];
    for (int64_t u = 0; u < units; ++u) unit_group_.push_back(gid);
    num_units_ += units;
  }

  client_active_.assign(static_cast<size_t>(num_clients), true);
  masks_.assign(static_cast<size_t>(num_clients),
                std::vector<uint8_t>(static_cast<size_t>(num_units_), 1));
}

int ActivationState::num_active_clients() const {
  return static_cast<int>(std::count(client_active_.begin(),
                                     client_active_.end(), true));
}

bool ActivationState::client_active(int client) const {
  FEDDA_CHECK(client >= 0 && client < num_clients_);
  return client_active_[static_cast<size_t>(client)];
}

std::vector<int> ActivationState::ActiveClients() const {
  std::vector<int> out;
  for (int i = 0; i < num_clients_; ++i) {
    if (client_active_[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

bool ActivationState::UnitActive(int client, int64_t unit) const {
  FEDDA_CHECK(client >= 0 && client < num_clients_);
  FEDDA_CHECK(unit >= 0 && unit < num_units_);
  return masks_[static_cast<size_t>(client)][static_cast<size_t>(unit)] != 0;
}

bool ActivationState::GroupRequested(int client, int group) const {
  FEDDA_CHECK(group >= 0 && group < total_groups_);
  const int64_t first = group_first_unit_[static_cast<size_t>(group)];
  if (first < 0) return true;  // outside [N_d]: always requested
  const int64_t count = GroupUnitCount(group);
  for (int64_t u = first; u < first + count; ++u) {
    if (UnitActive(client, u)) return true;
  }
  return false;
}

int64_t ActivationState::ActiveUnits(int client) const {
  FEDDA_CHECK(client >= 0 && client < num_clients_);
  const auto& mask = masks_[static_cast<size_t>(client)];
  return static_cast<int64_t>(
      std::count(mask.begin(), mask.end(), uint8_t{1}));
}

int64_t ActivationState::TransmittedGroups(int client) const {
  int64_t groups = nondisentangled_groups_;
  for (int gid = 0; gid < total_groups_; ++gid) {
    if (group_first_unit_[static_cast<size_t>(gid)] < 0) continue;
    if (GroupRequested(client, gid)) ++groups;
  }
  return groups;
}

int64_t ActivationState::TransmittedScalars(int client) const {
  int64_t scalars = nondisentangled_scalars_;
  if (options_.granularity == ActivationGranularity::kTensor) {
    for (int64_t u = 0; u < num_units_; ++u) {
      if (UnitActive(client, u)) {
        scalars += group_sizes_[static_cast<size_t>(UnitGroup(u))];
      }
    }
  } else {
    scalars += ActiveUnits(client);
  }
  return scalars;
}

void ActivationState::UpdateMasks(
    const std::vector<int>& participants,
    const std::vector<std::vector<double>>& magnitudes) {
  FEDDA_CHECK_EQ(participants.size(), magnitudes.size());
  for (const auto& m : magnitudes) {
    FEDDA_CHECK_EQ(static_cast<int64_t>(m.size()), num_units_);
  }
  std::vector<double> contributing;
  for (int64_t u = 0; u < num_units_; ++u) {
    // Threshold over contributing clients only.
    contributing.clear();
    for (size_t p = 0; p < participants.size(); ++p) {
      if (!UnitActive(participants[p], u)) continue;
      contributing.push_back(magnitudes[p][static_cast<size_t>(u)]);
    }
    if (contributing.empty()) continue;
    const double threshold = ComputeThreshold(&contributing, options_);
    for (size_t p = 0; p < participants.size(); ++p) {
      const int client = participants[p];
      if (!UnitActive(client, u)) continue;
      if (magnitudes[p][static_cast<size_t>(u)] < threshold) {
        masks_[static_cast<size_t>(client)][static_cast<size_t>(u)] = 0;
      }
    }
  }
}

std::vector<int> ActivationState::DeactivateLowOccupancy(
    const std::vector<int>& participants) {
  std::vector<int> deactivated;
  if (num_units_ == 0) return deactivated;
  const double threshold = options_.alpha * static_cast<double>(num_units_);
  for (int client : participants) {
    if (!client_active(client)) continue;
    if (static_cast<double>(ActiveUnits(client)) < threshold) {
      DeactivateClient(client);
      deactivated.push_back(client);
    }
  }
  return deactivated;
}

void ActivationState::DeactivateClient(int client) {
  FEDDA_CHECK(client >= 0 && client < num_clients_);
  client_active_[static_cast<size_t>(client)] = false;
}

void ActivationState::ActivateAll() {
  std::fill(client_active_.begin(), client_active_.end(), true);
  for (auto& mask : masks_) std::fill(mask.begin(), mask.end(), uint8_t{1});
}

void ActivationState::ReactivateClient(int client) {
  FEDDA_CHECK(client >= 0 && client < num_clients_);
  client_active_[static_cast<size_t>(client)] = true;
  auto& mask = masks_[static_cast<size_t>(client)];
  std::fill(mask.begin(), mask.end(), uint8_t{1});
}

const std::vector<uint8_t>& ActivationState::ClientMask(int client) const {
  FEDDA_CHECK(client >= 0 && client < num_clients_);
  return masks_[static_cast<size_t>(client)];
}

void ActivationState::SetClientMask(int client,
                                    const std::vector<uint8_t>& mask) {
  FEDDA_CHECK(client >= 0 && client < num_clients_);
  FEDDA_CHECK_EQ(mask.size(), static_cast<size_t>(num_units_));
  masks_[static_cast<size_t>(client)] = mask;
}

int ActivationState::UnitGroup(int64_t unit) const {
  FEDDA_CHECK(unit >= 0 && unit < num_units_);
  return unit_group_[static_cast<size_t>(unit)];
}

int64_t ActivationState::UnitOffsetInGroup(int64_t unit) const {
  if (options_.granularity == ActivationGranularity::kTensor) return 0;
  const int group = UnitGroup(unit);
  return unit - group_first_unit_[static_cast<size_t>(group)];
}

int64_t ActivationState::GroupFirstUnit(int group) const {
  FEDDA_CHECK(group >= 0 && group < total_groups_);
  return group_first_unit_[static_cast<size_t>(group)];
}

int64_t ActivationState::GroupUnitCount(int group) const {
  FEDDA_CHECK(group >= 0 && group < total_groups_);
  if (group_first_unit_[static_cast<size_t>(group)] < 0) return 0;
  return options_.granularity == ActivationGranularity::kTensor
             ? 1
             : group_sizes_[static_cast<size_t>(group)];
}

namespace {
/// v1 files (one u32 per mask bit, no options) keep loading; Save always
/// writes v2, which bit-packs masks via the wire-format codec (32x smaller
/// mask blocks) and persists the deactivation options so a checkpoint
/// cannot silently resume under different rules. The two formats are
/// distinguished by magic.
constexpr uint32_t kActivationMagicV1 = 0xF3DDAAC7;
constexpr uint32_t kActivationMagicV2 = 0xF3DDAAC8;
constexpr uint32_t kActivationVersion = 2;
}  // namespace

core::Status ActivationState::Save(const std::string& path) const {
  core::BinaryWriter writer;
  FEDDA_RETURN_IF_ERROR(writer.Open(path));
  writer.WriteU32(kActivationMagicV2);
  writer.WriteU32(kActivationVersion);
  writer.WriteU32(static_cast<uint32_t>(num_clients_));
  writer.WriteU32(options_.granularity == ActivationGranularity::kTensor ? 0
                                                                         : 1);
  writer.WriteI64(num_units_);
  writer.WriteDouble(options_.alpha);
  writer.WriteU32(static_cast<uint32_t>(options_.threshold_rule));
  writer.WriteDouble(options_.threshold_percentile);
  std::vector<uint8_t> active_bits(static_cast<size_t>(num_clients_), 0);
  for (int c = 0; c < num_clients_; ++c) {
    active_bits[static_cast<size_t>(c)] =
        client_active_[static_cast<size_t>(c)] ? 1 : 0;
  }
  writer.WriteBytes(PackBits(active_bits));
  for (int c = 0; c < num_clients_; ++c) {
    writer.WriteBytes(PackBits(masks_[static_cast<size_t>(c)]));
  }
  return writer.Close();
}

core::Status ActivationState::Load(const std::string& path) {
  core::BinaryReader reader;
  FEDDA_RETURN_IF_ERROR(reader.Open(path));
  const uint32_t magic = reader.ReadU32();
  if (magic != kActivationMagicV1 && magic != kActivationMagicV2) {
    return core::Status::InvalidArgument("not an activation-state file: " +
                                         path);
  }
  if (magic == kActivationMagicV2 &&
      reader.ReadU32() != kActivationVersion) {
    return core::Status::InvalidArgument("unsupported activation-state "
                                         "version");
  }
  if (reader.ReadU32() != static_cast<uint32_t>(num_clients_)) {
    return core::Status::InvalidArgument("client count mismatch");
  }
  const uint32_t granularity = reader.ReadU32();
  const bool is_tensor =
      options_.granularity == ActivationGranularity::kTensor;
  if ((granularity == 0) != is_tensor) {
    return core::Status::InvalidArgument("granularity mismatch");
  }
  if (reader.ReadI64() != num_units_) {
    return core::Status::InvalidArgument("unit count mismatch");
  }
  if (magic == kActivationMagicV2) {
    // v1 files predate option persistence and are accepted as-is; v2
    // checkpoints must have been written under the exact deactivation
    // options this state runs with, like the granularity check above.
    if (reader.ReadDouble() != options_.alpha) {
      return core::Status::InvalidArgument("alpha mismatch");
    }
    if (reader.ReadU32() !=
        static_cast<uint32_t>(options_.threshold_rule)) {
      return core::Status::InvalidArgument("threshold rule mismatch");
    }
    if (reader.ReadDouble() != options_.threshold_percentile) {
      return core::Status::InvalidArgument("threshold percentile mismatch");
    }
  }

  std::vector<bool> active(static_cast<size_t>(num_clients_), true);
  std::vector<std::vector<uint8_t>> masks(
      static_cast<size_t>(num_clients_),
      std::vector<uint8_t>(static_cast<size_t>(num_units_), 1));
  if (magic == kActivationMagicV2) {
    const std::vector<uint8_t> packed_active =
        reader.ReadBytes((static_cast<size_t>(num_clients_) + 7) / 8);
    if (!reader.status().ok()) return reader.status();
    const std::vector<uint8_t> active_bits =
        UnpackBits(packed_active, static_cast<size_t>(num_clients_));
    for (int c = 0; c < num_clients_; ++c) {
      active[static_cast<size_t>(c)] =
          active_bits[static_cast<size_t>(c)] != 0;
      const std::vector<uint8_t> packed_mask =
          reader.ReadBytes((static_cast<size_t>(num_units_) + 7) / 8);
      if (!reader.status().ok()) return reader.status();
      masks[static_cast<size_t>(c)] =
          UnpackBits(packed_mask, static_cast<size_t>(num_units_));
    }
  } else {
    for (int c = 0; c < num_clients_; ++c) {
      active[static_cast<size_t>(c)] = reader.ReadU32() != 0;
      for (int64_t u = 0; u < num_units_; ++u) {
        masks[static_cast<size_t>(c)][static_cast<size_t>(u)] =
            reader.ReadU32() != 0 ? 1 : 0;
      }
    }
  }
  if (!reader.status().ok()) return reader.status();
  if (!reader.AtEof()) {
    return core::Status::InvalidArgument("trailing bytes");
  }
  client_active_ = std::move(active);
  masks_ = std::move(masks);
  return core::Status::OK();
}

}  // namespace fedda::fl
