#include "fl/runner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "fl/aggregator.h"
#include "fl/transport.h"
#include "fl/wire.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace fedda::fl {

using tensor::ParameterStore;
using tensor::Tensor;

const char* FlAlgorithmName(FlAlgorithm algorithm) {
  switch (algorithm) {
    case FlAlgorithm::kFedAvg:
      return "FedAvg";
    case FlAlgorithm::kFedDaRestart:
      return "FedDA-Restart";
    case FlAlgorithm::kFedDaExplore:
      return "FedDA-Explore";
  }
  return "Unknown";
}

namespace {

void ValidateOptions(const FlOptions& options, size_t num_clients) {
  FEDDA_CHECK_GT(num_clients, 0u);
  FEDDA_CHECK_GT(options.rounds, 0);
  FEDDA_CHECK(options.client_fraction > 0.0 &&
              options.client_fraction <= 1.0);
  FEDDA_CHECK(options.param_fraction > 0.0 &&
              options.param_fraction <= 1.0);
  if (options.transport != nullptr) {
    // A transport round is the synchronous protocol over a real wire; the
    // semi-async server's virtual-time schedule has no remote counterpart.
    FEDDA_CHECK(options.aggregation_mode == AggregationMode::kSynchronous)
        << "transport execution supports synchronous aggregation only";
  }
  if (options.aggregation_mode == AggregationMode::kSemiAsync) {
    const SemiAsyncOptions& sa = options.semi_async;
    // Buffered aggregation mixes updates that trained on different rounds'
    // broadcasts; a per-round random group subset (FedAvg's rate D) has no
    // coherent meaning across that mix.
    FEDDA_CHECK_EQ(options.param_fraction, 1.0)
        << "semi-async mode requires param_fraction == 1";
    FEDDA_CHECK_GE(sa.staleness_exponent, 0.0);
    FEDDA_CHECK_GT(sa.network.uplink_bytes_per_sec, 0.0);
    FEDDA_CHECK_GT(sa.network.downlink_bytes_per_sec, 0.0);
    if (!sa.client_speed.empty()) {
      FEDDA_CHECK_EQ(sa.client_speed.size(), num_clients)
          << "client_speed must have one entry per client";
      for (double speed : sa.client_speed) FEDDA_CHECK_GT(speed, 0.0);
    }
  }
}

}  // namespace

FederatedRunner::FederatedRunner(const hgn::SimpleHgn* model,
                                 const graph::HeteroGraph* global_graph,
                                 const std::vector<graph::EdgeId>* test_edges,
                                 std::vector<std::unique_ptr<Client>> clients,
                                 FlOptions options)
    : model_(model), global_graph_(global_graph), test_edges_(test_edges),
      clients_(std::move(clients)), options_(options),
      global_mp_(model->BuildStructure(*global_graph)) {
  ValidateOptions(options_, clients_.size());
}

FederatedRunner::FederatedRunner(std::vector<std::unique_ptr<Client>> clients,
                                 Evaluator evaluator, FlOptions options)
    : clients_(std::move(clients)), options_(options),
      evaluator_(std::move(evaluator)) {
  FEDDA_CHECK(evaluator_ != nullptr);
  ValidateOptions(options_, clients_.size());
}

std::pair<double, double> FederatedRunner::EvaluateGlobal(
    tensor::ParameterStore* store, core::Rng* rng,
    core::ThreadPool* pool) const {
  if (evaluator_) return evaluator_(store, rng);
  hgn::EvalOptions eval_options = options_.eval;
  eval_options.pool = pool;
  eval_options.tracer = options_.tracer;
  const hgn::EvalResult eval = hgn::EvaluateLinkPrediction(
      *model_, *global_graph_, global_mp_, *test_edges_, store,
      eval_options, rng);
  return {eval.auc, eval.mrr};
}

std::vector<int> FederatedRunner::SelectParticipants(ActivationState* state,
                                                     core::Rng* rng) {
  if (options_.algorithm == FlAlgorithm::kFedAvg) {
    const int m = num_clients();
    const int take = std::max(
        1, static_cast<int>(std::llround(options_.client_fraction * m)));
    if (take >= m) {
      std::vector<int> all(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) all[static_cast<size_t>(i)] = i;
      return all;
    }
    std::vector<int> out;
    for (size_t idx : rng->SampleWithoutReplacement(
             static_cast<size_t>(m), static_cast<size_t>(take))) {
      out.push_back(static_cast<int>(idx));
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  return state->ActiveClients();
}

double FederatedRunner::AggregationWeight(int client) const {
  if (!options_.weighted_aggregation) return 1.0;
  return std::max<double>(
      1.0, static_cast<double>(
               clients_[static_cast<size_t>(client)]->num_task_edges()));
}

void FederatedRunner::UpdateActivation(
    const std::vector<int>& aggregated,
    const std::vector<std::vector<double>>& magnitudes,
    ActivationState* state, core::Rng* rng) {
  const int m = num_clients();
  state->UpdateMasks(aggregated, magnitudes);
  const std::vector<int> just_deactivated =
      state->DeactivateLowOccupancy(aggregated);

  if (options_.algorithm == FlAlgorithm::kFedDaRestart) {
    if (static_cast<double>(state->num_active_clients()) <
        options_.beta_r * m) {
      state->ActivateAll();
    }
  } else {
    const int target = std::max(
        1, static_cast<int>(std::llround(options_.beta_e * m)));
    if (state->num_active_clients() < target) {
      // Candidate pool: deactivated clients, excluding the ones dropped
      // this very round (paper Sec. 5.2, historical consistency).
      std::vector<int> candidates;
      for (int c = 0; c < m; ++c) {
        if (state->client_active(c)) continue;
        if (std::find(just_deactivated.begin(), just_deactivated.end(),
                      c) != just_deactivated.end()) {
          continue;
        }
        candidates.push_back(c);
      }
      rng->Shuffle(&candidates);
      for (int c : candidates) {
        if (state->num_active_clients() >= target) break;
        state->ReactivateClient(c);
      }
    }
    if (state->num_active_clients() == 0) {
      // Degenerate guard (e.g. every client deactivated in round 1 and
      // no rejoin candidates): restart rather than dead-lock.
      state->ActivateAll();
    }
  }
}

/// Shared per-run state and the two round drivers. One instance lives for
/// the whole Run(): the pool, activation state, downlink versions, event
/// queue, and in-flight bookkeeping all persist across rounds.
struct FederatedRunner::RoundLoop {
  FederatedRunner* runner;
  ParameterStore* global;
  core::Rng* rng;
  bool is_fedda;
  bool scalar_gran;
  int num_groups;

  ActivationState state;
  core::Rng eval_rng;
  core::ThreadPool pool;
  core::ThreadPool* pool_ptr;
  hgn::TrainOptions local_options;
  DownlinkVersionTracker downlink;
  /// Remote execution (null in-process). `mirror` tracks what each remote
  /// process's copy of the global store already holds, over *all* groups —
  /// unlike `downlink`, which bills only the masked requests. In-process
  /// clients read the global directly, so training on the full current
  /// model is free; a remote mirror has to be kept exact explicitly, and
  /// this tracker keeps those resyncs incremental (only groups aggregation
  /// rewrote since the client's last sync travel again).
  Transport* transport;
  DownlinkVersionTracker mirror;

  obs::Tracer* tracer;
  obs::Counter* ctr_rounds = nullptr;
  obs::Counter* ctr_participants = nullptr;
  obs::Counter* ctr_uplink_bytes = nullptr;
  obs::Counter* ctr_downlink_bytes = nullptr;
  obs::Counter* ctr_uplink_scalars = nullptr;
  obs::Counter* ctr_downlink_scalars = nullptr;
  obs::Counter* ctr_departures = nullptr;
  obs::Counter* ctr_forced_reactivations = nullptr;

  FlRunResult result;

  // Event-driven server state (semi-async mode).
  EventQueue queue;
  /// Client has an update (or a scheduled departure) in flight and must not
  /// be re-broadcast until the event is processed.
  std::vector<uint8_t> in_flight;
  /// Uplink accounting and loss of the in-flight update, captured when it
  /// was scheduled (the masks in force when the client trained) and charged
  /// when it arrives.
  struct Pending {
    double loss = 0.0;
    int64_t uplink_groups = 0;
    int64_t uplink_scalars = 0;
    int64_t uplink_bytes = 0;
    int64_t downlink_bytes = 0;
  };
  std::vector<Pending> pending;

  RoundLoop(FederatedRunner* r, ParameterStore* global_store, core::Rng* g)
      : runner(r), global(global_store), rng(g),
        is_fedda(r->options_.algorithm != FlAlgorithm::kFedAvg),
        scalar_gran(r->options_.activation.granularity ==
                    ActivationGranularity::kScalar),
        num_groups(global_store->num_groups()),
        state(r->num_clients(), *global_store, r->options_.activation),
        eval_rng(g->Split()),
        pool(r->options_.worker_threads),
        pool_ptr(r->options_.worker_threads > 0 ? &pool : nullptr),
        local_options(r->options_.local),
        downlink(r->num_clients(), num_groups),
        transport(r->options_.transport),
        mirror(r->num_clients(), num_groups),
        tracer(r->options_.tracer),
        in_flight(static_cast<size_t>(r->num_clients()), 0),
        pending(static_cast<size_t>(r->num_clients())) {
    local_options.pool = pool_ptr;
    local_options.tracer = tracer;
    obs::MetricsRegistry* metrics = r->options_.metrics;
    if (metrics != nullptr) {
      ctr_rounds = metrics->AddCounter("fl.rounds");
      ctr_participants = metrics->AddCounter("fl.participants");
      ctr_uplink_bytes = metrics->AddCounter("fl.uplink_bytes");
      ctr_downlink_bytes = metrics->AddCounter("fl.downlink_bytes");
      ctr_uplink_scalars = metrics->AddCounter("fl.uplink_scalars");
      ctr_downlink_scalars = metrics->AddCounter("fl.downlink_scalars");
      ctr_departures = metrics->AddCounter("fl.departures");
      ctr_forced_reactivations =
          metrics->AddCounter("fl.forced_reactivations");
    }
    result.history.reserve(static_cast<size_t>(r->options_.rounds));
  }

  const FlOptions& options() const { return runner->options_; }
  Client* client(int c) { return runner->clients_[static_cast<size_t>(c)].get(); }

  /// Every group the client requests this round under its current masks
  /// (everything, for FedAvg).
  std::vector<int> RequestedGroups(int c) const {
    std::vector<int> requested;
    for (int gid = 0; gid < num_groups; ++gid) {
      if (is_fedda && !state.GroupRequested(c, gid)) continue;
      requested.push_back(gid);
    }
    return requested;
  }

  /// Charges the requested-and-stale downlink for `c` against `record`;
  /// returns the bytes shipped (0 when the client's cache is current).
  int64_t ChargeDownlink(int c, const ParameterStore& broadcast, int round,
                         RoundRecord* record) {
    const std::vector<int> need = downlink.ClaimStale(c, RequestedGroups(c));
    int64_t bytes = 0;
    int64_t scalars = 0;
    if (!need.empty()) {
      const WirePayload payload = BuildDownlinkPayload(need, c, round,
                                                       broadcast);
      bytes = payload.EncodedBytes();
      scalars = payload.CoveredScalars();
    }
    record->downlink_bytes += bytes;
    record->downlink_scalars += scalars;
    record->max_downlink_bytes = std::max(record->max_downlink_bytes, bytes);
    record->max_downlink_scalars =
        std::max(record->max_downlink_scalars, scalars);
    return bytes;
  }

  /// Trains `trainers` on `broadcast` in parallel. RNG streams are split
  /// from the round RNG in trainer order before any update starts, so the
  /// result is identical whether updates run sequentially or on the pool.
  std::vector<double> TrainClients(const std::vector<int>& trainers,
                                   const ParameterStore& broadcast,
                                   int round) {
    std::vector<core::Rng> client_rngs;
    client_rngs.reserve(trainers.size());
    for (size_t p = 0; p < trainers.size(); ++p) {
      client_rngs.push_back(rng->Split());
    }
    std::vector<double> losses(trainers.size(), 0.0);
    auto update_one = [&](int64_t p) {
      const int c = trainers[static_cast<size_t>(p)];
      // Runs on a pool worker when worker_threads > 0, exercising the
      // tracer's per-thread span buffers.
      obs::ScopedSpan client_span(tracer, "client-update", "client", c);
      core::Rng& client_rng = client_rngs[static_cast<size_t>(p)];
      losses[static_cast<size_t>(p)] =
          client(c)->Update(broadcast, local_options, &client_rng);
      if (options().dp_noise_std > 0.0) {
        // Perturb the client's outgoing weights (the server only ever sees
        // the noisy values, including in the mask-update magnitudes).
        ParameterStore* params = client(c)->mutable_params();
        for (int gid = 0; gid < params->num_groups(); ++gid) {
          Tensor& value = params->value(gid);
          for (int64_t k = 0; k < value.size(); ++k) {
            value.data()[k] += static_cast<float>(
                client_rng.Gaussian(0.0, options().dp_noise_std));
          }
        }
      }
    };
    // With zero workers ParallelFor degenerates to the sequential loop;
    // with workers each client update is one chunk and the kernels inside
    // it recursively share the same pool.
    obs::ScopedSpan train_span(tracer, "local-train", "round", round);
    pool.ParallelFor(static_cast<int64_t>(trainers.size()), update_one);
    return losses;
  }

  /// Transport mode's counterpart of TrainClients: ships each participant
  /// its round task (split RNG state in TrainClients' order, the masks in
  /// force, a mirror resync), collects the replies, and prunes participants
  /// whose process departed mid-round (recording the departure and
  /// invalidating both downlink trackers). Returns the surviving
  /// participants' losses; their uplink payloads land in `uplinks`, aligned
  /// with the pruned `participants`.
  std::vector<double> ExecuteRemoteRound(
      std::vector<int>* participants,
      const std::vector<int>& selected_groups, int round,
      RoundRecord* record, std::vector<WirePayload>* uplinks) {
    std::vector<int> all_groups(static_cast<size_t>(num_groups));
    for (int gid = 0; gid < num_groups; ++gid) {
      all_groups[static_cast<size_t>(gid)] = gid;
    }
    std::vector<TransportTask> tasks;
    tasks.reserve(participants->size());
    for (int c : *participants) {
      TransportTask task;
      task.client = c;
      task.round = round;
      // One Split() per participant, in participant order — the exact draw
      // sequence TrainClients performs — so remote streams are bit-equal to
      // the in-process client streams.
      task.rng_state = rng->Split().SaveState();
      task.fedda = is_fedda;
      if (is_fedda) {
        task.mask_bits = state.ClientMask(c);
      } else {
        task.selected_groups = selected_groups;
      }
      task.sync = BuildDownlinkPayload(mirror.ClaimStale(c, all_groups), c,
                                       round, *global);
      tasks.push_back(std::move(task));
    }
    std::vector<TransportReply> replies = transport->ExecuteRound(tasks);
    FEDDA_CHECK_EQ(replies.size(), tasks.size());
    std::vector<int> delivered;
    std::vector<double> losses;
    for (size_t p = 0; p < replies.size(); ++p) {
      const int c = (*participants)[p];
      TransportReply& reply = replies[p];
      if (!reply.ok) {
        // The process died (or went silent past the read deadline) after
        // receiving this round's broadcast: its update is lost and its
        // cached copy of the model is gone with it, so a rejoin would be
        // charged as a full resync — same semantics as a semi-async
        // departure event.
        ++record->departures;
        if (ctr_departures != nullptr) ctr_departures->Increment();
        downlink.InvalidateClient(c);
        mirror.InvalidateClient(c);
        continue;
      }
      delivered.push_back(c);
      losses.push_back(reply.loss);
      uplinks->push_back(std::move(reply.uplink));
    }
    *participants = std::move(delivered);
    return losses;
  }

  /// Dynamic deactivation emptied the active set outside any reactivation
  /// window (e.g. beta_r = 0): force a full restart instead of aborting the
  /// process, record it, and refill `participants`.
  void ForceReactivation(std::vector<int>* participants, int round,
                         RoundRecord* record) {
    if (!participants->empty()) return;
    state.ActivateAll();
    *participants = state.ActiveClients();
    record->forced_reactivation = true;
    if (ctr_forced_reactivations != nullptr) {
      ctr_forced_reactivations->Increment();
    }
    // Recorded directly (not scheduled): the reactivation happens "now",
    // before anything else this round.
    Event event;
    event.time = queue.virtual_now();
    event.kind = EventKind::kReactivation;
    event.client = -1;
    event.round = round;
    result.events.push_back(event);
  }

  void FinishRound(RoundRecord record) {
    if (ctr_participants != nullptr) {
      ctr_participants->Add(record.participants);
      ctr_uplink_bytes->Add(record.uplink_bytes);
      ctr_downlink_bytes->Add(record.downlink_bytes);
      ctr_uplink_scalars->Add(record.uplink_scalars);
      ctr_downlink_scalars->Add(record.downlink_scalars);
    }
    result.total_uplink_groups += record.uplink_groups;
    result.total_uplink_scalars += record.uplink_scalars;
    result.total_max_uplink_scalars += record.max_uplink_scalars;
    result.total_uplink_bytes += record.uplink_bytes;
    result.total_downlink_bytes += record.downlink_bytes;
    result.total_downlink_scalars += record.downlink_scalars;
    result.total_max_downlink_scalars += record.max_downlink_scalars;
    result.history.push_back(std::move(record));
  }

  void Evaluate(int round, RoundRecord* record) {
    if (options().eval_every_round || round == options().rounds - 1) {
      obs::ScopedSpan eval_span(tracer, "eval", "round", round);
      std::tie(record->auc, record->mrr) =
          runner->EvaluateGlobal(global, &eval_rng, pool_ptr);
    }
  }

  void RunSyncRound(int round);
  void RunSemiAsyncRound(int round);
};

void FederatedRunner::RoundLoop::RunSyncRound(int round) {
  obs::ScopedSpan round_span(tracer, "round", "round", round);
  if (ctr_rounds != nullptr) ctr_rounds->Increment();
  RoundRecord record;
  record.round = round;

  std::vector<int> participants = runner->SelectParticipants(&state, rng);
  ForceReactivation(&participants, round, &record);
  if (options().client_failure_prob > 0.0) {
    std::vector<int> responding;
    for (int c : participants) {
      if (!rng->Bernoulli(options().client_failure_prob)) {
        responding.push_back(c);
      }
    }
    participants = std::move(responding);
  }
  if (transport != nullptr) {
    // Clients whose process already departed cannot be tasked. They are
    // filtered only *after* every selection and failure draw above, so a
    // departure-free remote run replays the exact in-process RNG stream.
    std::vector<int> alive;
    for (int c : participants) {
      if (transport->ClientAlive(c)) alive.push_back(c);
    }
    participants = std::move(alive);
  }
  if (participants.empty()) {
    // Everyone failed: no training, no aggregation, no uplink. The mean
    // loss is NaN, not 0: zero would read as a perfect round downstream.
    record.mean_local_loss = std::numeric_limits<double>::quiet_NaN();
    record.active_after_round = state.num_active_clients();
    Evaluate(round, &record);
    FinishRound(std::move(record));
    return;
  }

  // FedAvg's random parameter activation (rate D): one server-side group
  // subset per round, shared by all participants. FedDA transmits per its
  // masks, so every group is nominally "selected".
  std::vector<int> selected_groups;
  int64_t selected_scalars = 0;
  if (!is_fedda && options().param_fraction < 1.0) {
    const int take = std::max(
        1, static_cast<int>(
               std::llround(options().param_fraction * num_groups)));
    for (size_t idx : rng->SampleWithoutReplacement(
             static_cast<size_t>(num_groups), static_cast<size_t>(take))) {
      selected_groups.push_back(static_cast<int>(idx));
    }
    std::sort(selected_groups.begin(), selected_groups.end());
  } else {
    selected_groups.resize(static_cast<size_t>(num_groups));
    for (int gid = 0; gid < num_groups; ++gid) {
      selected_groups[static_cast<size_t>(gid)] = gid;
    }
  }
  for (int gid : selected_groups) {
    selected_scalars += global->value(gid).size();
  }

  // The broadcast is the global store itself: streaming aggregation defers
  // every write to Finalize(), so no global value changes while clients
  // read it and the old per-round O(model) deep copy is gone.
  const ParameterStore& broadcast = *global;
  std::vector<WirePayload> remote_uplinks;
  const std::vector<double> losses =
      transport == nullptr
          ? TrainClients(participants, broadcast, round)
          : ExecuteRemoteRound(&participants, selected_groups, round,
                               &record, &remote_uplinks);
  if (participants.empty()) {
    // Every tasked participant departed mid-round: nothing arrived, so
    // nothing aggregates — but the recorded departures stand.
    record.mean_local_loss = std::numeric_limits<double>::quiet_NaN();
    record.active_after_round = state.num_active_clients();
    Evaluate(round, &record);
    FinishRound(std::move(record));
    return;
  }
  double loss_sum = 0.0;
  for (double loss : losses) loss_sum += loss;

  record.participants = static_cast<int>(participants.size());
  record.mean_local_loss =
      loss_sum / static_cast<double>(participants.size());
  // Uplink and downlink accounting uses the masks in force *this* round
  // (before the post-aggregation update below). Bytes are measured off
  // real fl/wire.h payloads, so they include entry headers and the
  // bit-packed mask overhead.
  {
    obs::ScopedSpan wire_span(tracer, "wire-encode", "round", round);
    for (size_t p = 0; p < participants.size(); ++p) {
      const int c = participants[p];
      const int64_t scalars =
          is_fedda ? state.TransmittedScalars(c) : selected_scalars;
      record.uplink_groups += is_fedda
                                  ? state.TransmittedGroups(c)
                                  : static_cast<int64_t>(
                                        selected_groups.size());
      record.uplink_scalars += scalars;
      record.max_uplink_scalars =
          std::max(record.max_uplink_scalars, scalars);

      // Transport mode measures the payload that actually crossed the wire;
      // in-process rounds build it here. Both are the same bytes — the
      // remote side runs the same builders on the same masks and weights.
      WirePayload built;
      if (transport == nullptr) {
        built = is_fedda
                    ? BuildUplinkPayload(state, c, round, client(c)->params())
                    : BuildDenseUplinkPayload(selected_groups, c, round,
                                              client(c)->params());
      }
      const WirePayload& uplink =
          transport != nullptr ? remote_uplinks[p] : built;
      const int64_t uplink_bytes = uplink.EncodedBytes();
      record.uplink_bytes += uplink_bytes;
      record.max_uplink_bytes =
          std::max(record.max_uplink_bytes, uplink_bytes);

      // Downlink: requested groups whose cached version is stale. An empty
      // need-list costs nothing — the round trigger itself is covered by
      // the timing model's fixed per-round latency.
      ChargeDownlink(c, broadcast, round, &record);
    }
  }

  // Streaming aggregation: one update at a time into per-group running
  // sums, handed off by move and freed as soon as it is folded in. Peak
  // server memory is O(model) — the accumulators plus one update — instead
  // of every participant's full update staying alive until round end.
  std::vector<uint8_t> groups_updated;
  std::vector<std::vector<double>> magnitudes;
  {
    obs::ScopedSpan agg_span(tracer, "aggregate", "round", round);
    StreamingAggregator::Config config;
    config.fedda = is_fedda;
    config.scalar_granularity = scalar_gran;
    StreamingAggregator aggregator(global, &state, selected_groups, config);
    magnitudes.reserve(participants.size());
    for (size_t p = 0; p < participants.size(); ++p) {
      const int c = participants[p];
      ParameterStore update;
      if (transport != nullptr) {
        // Reconstruct the remote update from its wire payload onto a copy
        // of the broadcast. Scalars the payload masks off keep broadcast
        // values, which is enough for bit-identity: Accumulate never reads
        // a scalar the client's mask excludes. One reconstruction lives at
        // a time, preserving the streaming server's O(model) peak memory.
        update = *global;
        const core::Status applied = remote_uplinks[p].ApplyTo(&update);
        FEDDA_CHECK(applied.ok())
            << "uplink payload does not match the model layout (client "
            << c << "): " << applied.ToString();
      } else {
        update = client(c)->TakeUpdate();
      }
      magnitudes.push_back(
          aggregator.Accumulate(c, runner->AggregationWeight(c), update));
    }
    aggregator.Finalize(global, &groups_updated);
    downlink.AdvanceGroups(groups_updated);
    if (transport != nullptr) mirror.AdvanceGroups(groups_updated);
  }

  if (is_fedda) {
    obs::ScopedSpan mask_span(tracer, "mask-update", "round", round);
    runner->UpdateActivation(participants, magnitudes, &state, rng);
  }

  record.active_after_round = state.num_active_clients();
  Evaluate(round, &record);
  FinishRound(std::move(record));
}

void FederatedRunner::RoundLoop::RunSemiAsyncRound(int round) {
  obs::ScopedSpan round_span(tracer, "round", "round", round);
  if (ctr_rounds != nullptr) ctr_rounds->Increment();
  const SemiAsyncOptions& sa = options().semi_async;
  RoundRecord record;
  record.round = round;

  // 1. Select, force reactivation if dynamic deactivation emptied the
  // active set, and keep only clients without an update already in flight.
  std::vector<int> selected = runner->SelectParticipants(&state, rng);
  if (is_fedda) ForceReactivation(&selected, round, &record);
  std::vector<int> starters;
  for (int c : selected) {
    if (!in_flight[static_cast<size_t>(c)]) starters.push_back(c);
  }
  record.started = static_cast<int>(starters.size());

  // 2. Dropout decisions on the coordinator, in starter order (never on
  // pool workers), so the event schedule is a pure function of the seed.
  std::vector<int> trainers;
  std::vector<int> dropouts;
  for (int c : starters) {
    if (options().client_failure_prob > 0.0 &&
        rng->Bernoulli(options().client_failure_prob)) {
      dropouts.push_back(c);
    } else {
      trainers.push_back(c);
    }
  }

  // 3. Every starter receives the broadcast now (dropouts crash later,
  // mid-flight: their downlink was still spent).
  const ParameterStore& broadcast = *global;
  {
    obs::ScopedSpan wire_span(tracer, "wire-encode", "round", round);
    for (int c : starters) {
      pending[static_cast<size_t>(c)].downlink_bytes =
          ChargeDownlink(c, broadcast, round, &record);
    }
  }

  // 4. Local training (dropouts never deliver, so simulating their wasted
  // epochs would only burn host time; they draw no RNG either).
  const std::vector<double> losses = TrainClients(trainers, broadcast,
                                                  round);

  // 5. Schedule events at NetworkModel-derived virtual times. Uplink
  // accounting is captured now (the masks the client trained under) and
  // charged when the update arrives.
  const double now = queue.virtual_now();
  const NetworkModel& net = sa.network;
  auto speed_of = [&](int c) {
    return sa.client_speed.empty()
               ? 1.0
               : sa.client_speed[static_cast<size_t>(c)];
  };
  const double compute_sec =
      static_cast<double>(options().local.local_epochs) *
      net.compute_sec_per_epoch;
  std::vector<int> all_groups(static_cast<size_t>(num_groups));
  for (int gid = 0; gid < num_groups; ++gid) {
    all_groups[static_cast<size_t>(gid)] = gid;
  }
  {
    obs::ScopedSpan sched_span(tracer, "event-schedule", "round", round);
    for (size_t p = 0; p < trainers.size(); ++p) {
      const int c = trainers[p];
      Pending& entry = pending[static_cast<size_t>(c)];
      entry.loss = losses[p];
      entry.uplink_groups =
          is_fedda ? state.TransmittedGroups(c)
                   : static_cast<int64_t>(num_groups);
      entry.uplink_scalars = is_fedda ? state.TransmittedScalars(c)
                                      : global->num_scalars();
      const WirePayload uplink =
          is_fedda ? BuildUplinkPayload(state, c, round, client(c)->params())
                   : BuildDenseUplinkPayload(all_groups, c, round,
                                             client(c)->params());
      entry.uplink_bytes = uplink.EncodedBytes();
      const double duration =
          speed_of(c) *
          (net.round_latency_sec +
           static_cast<double>(entry.downlink_bytes) /
               net.downlink_bytes_per_sec +
           compute_sec +
           static_cast<double>(entry.uplink_bytes) /
               net.uplink_bytes_per_sec);
      queue.Push(now + duration, EventKind::kArrival, c, round);
      in_flight[static_cast<size_t>(c)] = 1;
    }
    for (int c : dropouts) {
      // Crashed before upload: latency + downlink + compute, no uplink
      // term.
      const double duration =
          speed_of(c) *
          (net.round_latency_sec +
           static_cast<double>(
               pending[static_cast<size_t>(c)].downlink_bytes) /
               net.downlink_bytes_per_sec +
           compute_sec);
      queue.Push(now + duration, EventKind::kDeparture, c, round);
      in_flight[static_cast<size_t>(c)] = 1;
    }
  }

  // 6. Drain the queue until the buffer holds K arrivals (or nothing is in
  // flight). Departures are processed as encountered: the client's cached
  // model is invalidated so its rejoin is charged as a full resync.
  const int buffer_k = sa.buffer_size;
  std::vector<int> aggregated;
  std::vector<std::vector<double>> magnitudes;
  std::vector<uint8_t> groups_updated;
  double loss_sum = 0.0;
  double staleness_sum = 0.0;
  {
    obs::ScopedSpan agg_span(tracer, "aggregate", "round", round);
    StreamingAggregator::Config config;
    config.fedda = is_fedda;
    config.scalar_granularity = scalar_gran;
    StreamingAggregator aggregator(global, &state, all_groups, config);
    while (!queue.empty() &&
           (buffer_k <= 0 ||
            static_cast<int>(aggregated.size()) < buffer_k)) {
      const Event event = queue.Pop();
      result.events.push_back(event);
      const int c = event.client;
      in_flight[static_cast<size_t>(c)] = 0;
      if (event.kind == EventKind::kDeparture) {
        downlink.InvalidateClient(c);
        ++record.departures;
        if (ctr_departures != nullptr) ctr_departures->Increment();
        continue;
      }
      const int staleness = round - event.round;
      const double weight =
          runner->AggregationWeight(c) /
          std::pow(1.0 + static_cast<double>(staleness),
                   sa.staleness_exponent);
      const Pending& entry = pending[static_cast<size_t>(c)];
      record.uplink_groups += entry.uplink_groups;
      record.uplink_scalars += entry.uplink_scalars;
      record.max_uplink_scalars =
          std::max(record.max_uplink_scalars, entry.uplink_scalars);
      record.uplink_bytes += entry.uplink_bytes;
      record.max_uplink_bytes =
          std::max(record.max_uplink_bytes, entry.uplink_bytes);
      loss_sum += entry.loss;
      staleness_sum += static_cast<double>(staleness);
      const ParameterStore update = client(c)->TakeUpdate();
      magnitudes.push_back(aggregator.Accumulate(c, weight, update));
      aggregated.push_back(c);
    }
    if (!aggregated.empty()) {
      aggregator.Finalize(global, &groups_updated);
      downlink.AdvanceGroups(groups_updated);
    }
  }
  record.virtual_time_sec = queue.virtual_now();

  if (aggregated.empty()) {
    // Nothing reached the buffer (everyone in flight dropped out, or no
    // one was eligible to start): no aggregation, NaN loss.
    record.mean_local_loss = std::numeric_limits<double>::quiet_NaN();
  } else {
    record.participants = static_cast<int>(aggregated.size());
    record.mean_local_loss =
        loss_sum / static_cast<double>(aggregated.size());
    record.mean_staleness =
        staleness_sum / static_cast<double>(aggregated.size());
    if (is_fedda) {
      obs::ScopedSpan mask_span(tracer, "mask-update", "round", round);
      runner->UpdateActivation(aggregated, magnitudes, &state, rng);
    }
  }

  record.active_after_round = state.num_active_clients();
  Evaluate(round, &record);
  FinishRound(std::move(record));
}

FlRunResult FederatedRunner::Run(ParameterStore* global_store,
                                 core::Rng* rng) {
  // Observability. Tracing and metrics read state the run produces anyway —
  // they never draw randomness or alter control flow, so enabling them
  // cannot perturb seeded results.
  obs::ScopedSpan run_span(options_.tracer, "run");
  RoundLoop loop(this, global_store, rng);
  loop.result.aggregation_mode = options_.aggregation_mode;
  const bool semi_async =
      options_.aggregation_mode == AggregationMode::kSemiAsync;
  for (int round = 0; round < options_.rounds; ++round) {
    if (semi_async) {
      loop.RunSemiAsyncRound(round);
    } else {
      loop.RunSyncRound(round);
    }
  }
  loop.result.final_auc = loop.result.history.back().auc;
  loop.result.final_mrr = loop.result.history.back().mrr;
  return std::move(loop.result);
}

}  // namespace fedda::fl
