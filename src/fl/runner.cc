#include "fl/runner.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "fl/wire.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace fedda::fl {

using tensor::ParameterStore;
using tensor::Tensor;

const char* FlAlgorithmName(FlAlgorithm algorithm) {
  switch (algorithm) {
    case FlAlgorithm::kFedAvg:
      return "FedAvg";
    case FlAlgorithm::kFedDaRestart:
      return "FedDA-Restart";
    case FlAlgorithm::kFedDaExplore:
      return "FedDA-Explore";
  }
  return "Unknown";
}

namespace {

void ValidateOptions(const FlOptions& options, size_t num_clients) {
  FEDDA_CHECK_GT(num_clients, 0u);
  FEDDA_CHECK_GT(options.rounds, 0);
  FEDDA_CHECK(options.client_fraction > 0.0 &&
              options.client_fraction <= 1.0);
  FEDDA_CHECK(options.param_fraction > 0.0 &&
              options.param_fraction <= 1.0);
}

}  // namespace

FederatedRunner::FederatedRunner(const hgn::SimpleHgn* model,
                                 const graph::HeteroGraph* global_graph,
                                 const std::vector<graph::EdgeId>* test_edges,
                                 std::vector<std::unique_ptr<Client>> clients,
                                 FlOptions options)
    : model_(model), global_graph_(global_graph), test_edges_(test_edges),
      clients_(std::move(clients)), options_(options),
      global_mp_(model->BuildStructure(*global_graph)) {
  ValidateOptions(options_, clients_.size());
}

FederatedRunner::FederatedRunner(std::vector<std::unique_ptr<Client>> clients,
                                 Evaluator evaluator, FlOptions options)
    : clients_(std::move(clients)), options_(options),
      evaluator_(std::move(evaluator)) {
  FEDDA_CHECK(evaluator_ != nullptr);
  ValidateOptions(options_, clients_.size());
}

std::pair<double, double> FederatedRunner::EvaluateGlobal(
    tensor::ParameterStore* store, core::Rng* rng,
    core::ThreadPool* pool) const {
  if (evaluator_) return evaluator_(store, rng);
  hgn::EvalOptions eval_options = options_.eval;
  eval_options.pool = pool;
  eval_options.tracer = options_.tracer;
  const hgn::EvalResult eval = hgn::EvaluateLinkPrediction(
      *model_, *global_graph_, global_mp_, *test_edges_, store,
      eval_options, rng);
  return {eval.auc, eval.mrr};
}

std::vector<int> FederatedRunner::SelectParticipants(ActivationState* state,
                                                     core::Rng* rng) {
  if (options_.algorithm == FlAlgorithm::kFedAvg) {
    const int m = num_clients();
    const int take = std::max(
        1, static_cast<int>(std::llround(options_.client_fraction * m)));
    if (take >= m) {
      std::vector<int> all(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) all[static_cast<size_t>(i)] = i;
      return all;
    }
    std::vector<int> out;
    for (size_t idx : rng->SampleWithoutReplacement(
             static_cast<size_t>(m), static_cast<size_t>(take))) {
      out.push_back(static_cast<int>(idx));
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  return state->ActiveClients();
}

std::vector<std::vector<double>> FederatedRunner::AggregateAndMeasure(
    const std::vector<int>& participants, const ParameterStore& broadcast,
    const std::vector<int>& selected_groups, const ActivationState& state,
    ParameterStore* global_store,
    std::vector<uint8_t>* groups_updated) const {
  groups_updated->assign(static_cast<size_t>(global_store->num_groups()), 0);
  const bool is_fedda = options_.algorithm != FlAlgorithm::kFedAvg;
  const bool scalar_gran = options_.activation.granularity ==
                           ActivationGranularity::kScalar;

  std::vector<std::vector<double>> magnitudes;
  if (is_fedda) {
    magnitudes.assign(participants.size(),
                      std::vector<double>(
                          static_cast<size_t>(state.num_units()), 0.0));
  }

  // Aggregation weights (renormalized per unit over its contributors).
  // Uniform by default (the paper's privacy-preserving p_i = 1/M); task-size
  // proportional when weighted_aggregation is on.
  std::vector<double> weight(participants.size(), 1.0);
  if (options_.weighted_aggregation) {
    for (size_t p = 0; p < participants.size(); ++p) {
      weight[p] = std::max<double>(
          1.0, static_cast<double>(
                   clients_[static_cast<size_t>(participants[p])]
                       ->num_task_edges()));
    }
  }

  std::vector<bool> group_selected(
      static_cast<size_t>(global_store->num_groups()), false);
  for (int gid : selected_groups) group_selected[static_cast<size_t>(gid)] = true;

  for (int gid = 0; gid < global_store->num_groups(); ++gid) {
    const int64_t size = global_store->value(gid).size();
    const int64_t first_unit = state.GroupFirstUnit(gid);
    const bool maskable = first_unit >= 0;

    if (!is_fedda) {
      // FedAvg: unselected groups keep their previous global value (Fig. 2's
      // random parameter activation with rate D).
      if (!group_selected[static_cast<size_t>(gid)]) continue;
      Tensor& target = global_store->value(gid);
      target.Zero();
      double total_weight = 0.0;
      for (size_t p = 0; p < participants.size(); ++p) {
        target.Axpy(static_cast<float>(weight[p]),
                    clients_[static_cast<size_t>(participants[p])]
                        ->params()
                        .value(gid));
        total_weight += weight[p];
      }
      target.Scale(1.0f / static_cast<float>(total_weight));
      (*groups_updated)[static_cast<size_t>(gid)] = 1;
      continue;
    }

    // FedDA masked aggregation (Eq. 6) + pseudo-gradient magnitudes.
    if (!maskable || !scalar_gran) {
      // Whole-group aggregation: contributors are participants whose mask
      // requests this group (everyone, for groups outside [N_d]).
      Tensor sum(global_store->value(gid).rows(),
                 global_store->value(gid).cols());
      double total_weight = 0.0;
      for (size_t p = 0; p < participants.size(); ++p) {
        const int c = participants[p];
        if (maskable && !state.UnitActive(c, first_unit)) continue;
        const Tensor& cv = clients_[static_cast<size_t>(c)]->params().value(gid);
        sum.Axpy(static_cast<float>(weight[p]), cv);
        total_weight += weight[p];
        if (maskable) {
          // Tensor-granularity magnitude: mean |delta| over the group.
          const Tensor delta = cv.Sub(broadcast.value(gid));
          magnitudes[p][static_cast<size_t>(first_unit)] = delta.AbsMean();
        }
      }
      if (total_weight > 0.0) {
        sum.Scale(1.0f / static_cast<float>(total_weight));
        global_store->value(gid) = std::move(sum);
        (*groups_updated)[static_cast<size_t>(gid)] = 1;
      }
      continue;
    }

    // Scalar granularity on a disentangled group: per-scalar contributors.
    Tensor& target = global_store->value(gid);
    const Tensor& old = broadcast.value(gid);
    for (int64_t s = 0; s < size; ++s) {
      double sum = 0.0;
      double total_weight = 0.0;
      for (size_t p = 0; p < participants.size(); ++p) {
        const int c = participants[p];
        if (!state.UnitActive(c, first_unit + s)) continue;
        const float cv =
            clients_[static_cast<size_t>(c)]->params().value(gid).data()[s];
        sum += weight[p] * cv;
        total_weight += weight[p];
        magnitudes[p][static_cast<size_t>(first_unit + s)] =
            std::fabs(cv - old.data()[s]);
      }
      if (total_weight > 0.0) {
        target.data()[s] = static_cast<float>(sum / total_weight);
        (*groups_updated)[static_cast<size_t>(gid)] = 1;
      } else {
        target.data()[s] = old.data()[s];
      }
    }
  }
  return magnitudes;
}

FlRunResult FederatedRunner::Run(ParameterStore* global_store,
                                 core::Rng* rng) {
  const int m = num_clients();
  ActivationState state(m, *global_store, options_.activation);
  const bool is_fedda = options_.algorithm != FlAlgorithm::kFedAvg;
  core::Rng eval_rng = rng->Split();

  // One long-lived pool for the whole run, shared by every round: client
  // updates fan out across it, and the same pool is handed down to the
  // tensor kernels (via TrainOptions/EvalOptions) for row-level parallelism.
  core::ThreadPool pool(options_.worker_threads);
  core::ThreadPool* pool_ptr = options_.worker_threads > 0 ? &pool : nullptr;
  hgn::TrainOptions local_options = options_.local;
  local_options.pool = pool_ptr;
  local_options.tracer = options_.tracer;

  // Observability. Tracing and metrics read state the run produces anyway —
  // they never draw randomness or alter control flow, so enabling them
  // cannot perturb seeded results.
  obs::Tracer* tracer = options_.tracer;
  obs::ScopedSpan run_span(tracer, "run");
  obs::Counter* ctr_rounds = nullptr;
  obs::Counter* ctr_participants = nullptr;
  obs::Counter* ctr_uplink_bytes = nullptr;
  obs::Counter* ctr_downlink_bytes = nullptr;
  obs::Counter* ctr_uplink_scalars = nullptr;
  obs::Counter* ctr_downlink_scalars = nullptr;
  if (options_.metrics != nullptr) {
    ctr_rounds = options_.metrics->AddCounter("fl.rounds");
    ctr_participants = options_.metrics->AddCounter("fl.participants");
    ctr_uplink_bytes = options_.metrics->AddCounter("fl.uplink_bytes");
    ctr_downlink_bytes = options_.metrics->AddCounter("fl.downlink_bytes");
    ctr_uplink_scalars = options_.metrics->AddCounter("fl.uplink_scalars");
    ctr_downlink_scalars =
        options_.metrics->AddCounter("fl.downlink_scalars");
  }

  // Downlink version tracking for the measured wire accounting: the server
  // re-ships a group to a client only when the client requests it (FedAvg
  // requests everything) and its cached copy is stale. The staleness
  // bookkeeping lives in the wire layer's DownlinkVersionTracker (round 0
  // charges the initial full broadcast, reactivations are charged as
  // resyncs); the round loop only decides which groups each client
  // requests.
  const int num_groups = global_store->num_groups();
  DownlinkVersionTracker downlink_tracker(m, num_groups);

  FlRunResult result;
  result.history.reserve(static_cast<size_t>(options_.rounds));

  for (int round = 0; round < options_.rounds; ++round) {
    obs::ScopedSpan round_span(tracer, "round", "round", round);
    if (ctr_rounds != nullptr) ctr_rounds->Increment();
    std::vector<int> participants = SelectParticipants(&state, rng);
    FEDDA_CHECK(!participants.empty())
        << "empty participant set in round" << round;
    if (options_.client_failure_prob > 0.0) {
      std::vector<int> responding;
      for (int c : participants) {
        if (!rng->Bernoulli(options_.client_failure_prob)) {
          responding.push_back(c);
        }
      }
      participants = std::move(responding);
    }
    if (participants.empty()) {
      // Everyone failed: no training, no aggregation, no uplink.
      RoundRecord record;
      record.round = round;
      record.active_after_round = state.num_active_clients();
      if (options_.eval_every_round || round == options_.rounds - 1) {
        obs::ScopedSpan eval_span(tracer, "eval", "round", round);
        std::tie(record.auc, record.mrr) =
            EvaluateGlobal(global_store, &eval_rng, pool_ptr);
      }
      result.history.push_back(record);
      continue;
    }

    // FedAvg's random parameter activation (rate D): one server-side group
    // subset per round, shared by all participants. FedDA transmits per its
    // masks, so every group is nominally "selected".
    std::vector<int> selected_groups;
    int64_t selected_scalars = 0;
    {
      const int total = global_store->num_groups();
      if (!is_fedda && options_.param_fraction < 1.0) {
        const int take = std::max(
            1, static_cast<int>(
                   std::llround(options_.param_fraction * total)));
        for (size_t idx : rng->SampleWithoutReplacement(
                 static_cast<size_t>(total), static_cast<size_t>(take))) {
          selected_groups.push_back(static_cast<int>(idx));
        }
        std::sort(selected_groups.begin(), selected_groups.end());
      } else {
        selected_groups.resize(static_cast<size_t>(total));
        for (int gid = 0; gid < total; ++gid) {
          selected_groups[static_cast<size_t>(gid)] = gid;
        }
      }
      for (int gid : selected_groups) {
        selected_scalars += global_store->value(gid).size();
      }
    }

    // Broadcast + local updates. RNG streams are split up front so the
    // result is identical whether updates run sequentially or on a pool.
    const ParameterStore broadcast = *global_store;
    std::vector<core::Rng> client_rngs;
    client_rngs.reserve(participants.size());
    for (size_t p = 0; p < participants.size(); ++p) {
      client_rngs.push_back(rng->Split());
    }
    std::vector<double> losses(participants.size(), 0.0);
    auto update_one = [&](int64_t p) {
      const int c = participants[static_cast<size_t>(p)];
      // Runs on a pool worker when worker_threads > 0, exercising the
      // tracer's per-thread span buffers.
      obs::ScopedSpan client_span(tracer, "client-update", "client", c);
      core::Rng& client_rng = client_rngs[static_cast<size_t>(p)];
      losses[static_cast<size_t>(p)] = clients_[static_cast<size_t>(c)]
                                           ->Update(broadcast, local_options,
                                                    &client_rng);
      if (options_.dp_noise_std > 0.0) {
        // Perturb the client's outgoing weights (the server only ever sees
        // the noisy values, including in the mask-update magnitudes).
        ParameterStore* params = clients_[static_cast<size_t>(c)]
                                     ->mutable_params();
        for (int gid = 0; gid < params->num_groups(); ++gid) {
          Tensor& value = params->value(gid);
          for (int64_t k = 0; k < value.size(); ++k) {
            value.data()[k] += static_cast<float>(
                client_rng.Gaussian(0.0, options_.dp_noise_std));
          }
        }
      }
    };
    // With zero workers ParallelFor degenerates to the sequential loop; with
    // workers each client update is one chunk and the kernels inside it
    // recursively share the same pool.
    {
      obs::ScopedSpan train_span(tracer, "local-train", "round", round);
      pool.ParallelFor(static_cast<int64_t>(participants.size()),
                       update_one);
    }
    double loss_sum = 0.0;
    for (double loss : losses) loss_sum += loss;

    RoundRecord record;
    record.round = round;
    record.participants = static_cast<int>(participants.size());
    record.mean_local_loss =
        loss_sum / static_cast<double>(participants.size());
    // Uplink and downlink accounting uses the masks in force *this* round
    // (before the post-aggregation update below). Bytes are measured off
    // real fl/wire.h payloads, so they include entry headers and the
    // bit-packed mask overhead.
    std::optional<obs::ScopedSpan> wire_span;
    wire_span.emplace(tracer, "wire-encode", "round",
                      static_cast<int64_t>(round));
    for (int c : participants) {
      const int64_t scalars =
          is_fedda ? state.TransmittedScalars(c) : selected_scalars;
      record.uplink_groups += is_fedda
                                  ? state.TransmittedGroups(c)
                                  : static_cast<int64_t>(
                                        selected_groups.size());
      record.uplink_scalars += scalars;
      record.max_uplink_scalars =
          std::max(record.max_uplink_scalars, scalars);

      const WirePayload uplink =
          is_fedda
              ? BuildUplinkPayload(state, c, round,
                                   clients_[static_cast<size_t>(c)]->params())
              : BuildDenseUplinkPayload(
                    selected_groups, c, round,
                    clients_[static_cast<size_t>(c)]->params());
      const int64_t uplink_bytes = uplink.EncodedBytes();
      record.uplink_bytes += uplink_bytes;
      record.max_uplink_bytes =
          std::max(record.max_uplink_bytes, uplink_bytes);

      // Downlink: requested groups whose cached version is stale. An empty
      // need-list costs nothing — the round trigger itself is covered by
      // the timing model's fixed per-round latency.
      std::vector<int> requested;
      for (int gid = 0; gid < num_groups; ++gid) {
        if (is_fedda && !state.GroupRequested(c, gid)) continue;
        requested.push_back(gid);
      }
      const std::vector<int> need = downlink_tracker.ClaimStale(c, requested);
      int64_t downlink_bytes = 0;
      int64_t downlink_scalars = 0;
      if (!need.empty()) {
        const WirePayload downlink =
            BuildDownlinkPayload(need, c, round, broadcast);
        downlink_bytes = downlink.EncodedBytes();
        downlink_scalars = downlink.CoveredScalars();
      }
      record.downlink_bytes += downlink_bytes;
      record.downlink_scalars += downlink_scalars;
      record.max_downlink_bytes =
          std::max(record.max_downlink_bytes, downlink_bytes);
      record.max_downlink_scalars =
          std::max(record.max_downlink_scalars, downlink_scalars);
    }
    wire_span.reset();

    std::vector<uint8_t> groups_updated;
    std::vector<std::vector<double>> magnitudes;
    {
      obs::ScopedSpan agg_span(tracer, "aggregate", "round", round);
      magnitudes =
          AggregateAndMeasure(participants, broadcast, selected_groups,
                              state, global_store, &groups_updated);
      downlink_tracker.AdvanceGroups(groups_updated);
    }

    if (is_fedda) {
      obs::ScopedSpan mask_span(tracer, "mask-update", "round", round);
      state.UpdateMasks(participants, magnitudes);
      const std::vector<int> just_deactivated =
          state.DeactivateLowOccupancy(participants);

      if (options_.algorithm == FlAlgorithm::kFedDaRestart) {
        if (static_cast<double>(state.num_active_clients()) <
            options_.beta_r * m) {
          state.ActivateAll();
        }
      } else {
        const int target = std::max(
            1, static_cast<int>(std::llround(options_.beta_e * m)));
        if (state.num_active_clients() < target) {
          // Candidate pool: deactivated clients, excluding the ones dropped
          // this very round (paper Sec. 5.2, historical consistency).
          std::vector<int> candidates;
          for (int c = 0; c < m; ++c) {
            if (state.client_active(c)) continue;
            if (std::find(just_deactivated.begin(), just_deactivated.end(),
                          c) != just_deactivated.end()) {
              continue;
            }
            candidates.push_back(c);
          }
          rng->Shuffle(&candidates);
          for (int c : candidates) {
            if (state.num_active_clients() >= target) break;
            state.ReactivateClient(c);
          }
        }
        if (state.num_active_clients() == 0) {
          // Degenerate guard (e.g. every client deactivated in round 1 and
          // no rejoin candidates): restart rather than dead-lock.
          state.ActivateAll();
        }
      }
    }

    record.active_after_round = state.num_active_clients();

    if (options_.eval_every_round || round == options_.rounds - 1) {
      obs::ScopedSpan eval_span(tracer, "eval", "round", round);
      std::tie(record.auc, record.mrr) =
          EvaluateGlobal(global_store, &eval_rng, pool_ptr);
    }

    if (options_.metrics != nullptr) {
      ctr_participants->Add(record.participants);
      ctr_uplink_bytes->Add(record.uplink_bytes);
      ctr_downlink_bytes->Add(record.downlink_bytes);
      ctr_uplink_scalars->Add(record.uplink_scalars);
      ctr_downlink_scalars->Add(record.downlink_scalars);
    }

    result.total_uplink_groups += record.uplink_groups;
    result.total_uplink_scalars += record.uplink_scalars;
    result.total_max_uplink_scalars += record.max_uplink_scalars;
    result.total_uplink_bytes += record.uplink_bytes;
    result.total_downlink_bytes += record.downlink_bytes;
    result.total_downlink_scalars += record.downlink_scalars;
    result.total_max_downlink_scalars += record.max_downlink_scalars;
    result.history.push_back(record);
  }

  result.final_auc = result.history.back().auc;
  result.final_mrr = result.history.back().mrr;
  return result;
}

}  // namespace fedda::fl
