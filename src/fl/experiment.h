#ifndef FEDDA_FL_EXPERIMENT_H_
#define FEDDA_FL_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "data/partition.h"
#include "data/schema.h"
#include "fl/baselines.h"
#include "fl/runner.h"
#include "graph/split.h"
#include "metrics/metrics.h"

namespace fedda::fl {

/// Everything needed to materialize one distributed heterograph system
/// (paper Sec. 6.1, "System synthesis").
struct SystemConfig {
  data::SyntheticSpec data;
  /// Held-out global test fraction (paper: 10% Amazon, 15% DBLP).
  double test_fraction = 0.10;
  data::PartitionOptions partition;
  hgn::SimpleHgnConfig model;
  /// Seed controlling data generation, the split, and the client partition
  /// (NOT model init — each run seeds that separately, paper-style).
  uint64_t seed = 7;
};

/// A materialized system: the global graph, its train/test split, the biased
/// client shards, and the model architecture. All frameworks of one
/// comparison share a single FederatedSystem so they see identical data.
class FederatedSystem {
 public:
  static FederatedSystem Build(const SystemConfig& config);

  FederatedSystem(FederatedSystem&&) = default;
  FederatedSystem& operator=(FederatedSystem&&) = default;

  const graph::HeteroGraph& global() const { return *global_; }
  const std::vector<graph::EdgeId>& train_edges() const {
    return split_.train;
  }
  const std::vector<graph::EdgeId>& test_edges() const { return split_.test; }
  const std::vector<data::ClientShard>& shards() const { return shards_; }
  const hgn::SimpleHgn& model() const { return *model_; }
  int num_clients() const { return static_cast<int>(shards_.size()); }

  /// Fresh model parameters initialized from `seed` (same across all
  /// frameworks of one run, per FedAvg's shared-initialization requirement).
  tensor::ParameterStore MakeInitialStore(uint64_t seed) const;

  /// Fresh clients whose stores copy `reference` (structure and values).
  std::vector<std::unique_ptr<Client>> MakeClients(
      const tensor::ParameterStore& reference) const;

 private:
  FederatedSystem() = default;

  std::unique_ptr<graph::HeteroGraph> global_;
  graph::EdgeSplit split_;
  std::vector<data::ClientShard> shards_;
  /// mutable: InitParameters records group ids on first use.
  mutable std::unique_ptr<hgn::SimpleHgn> model_;
};

/// Runs one federated experiment on `system` with fresh init from
/// `run_seed`.
FlRunResult RunFederated(const FederatedSystem& system,
                         const FlOptions& options, uint64_t run_seed);

/// Runs `num_runs` repetitions with seeds base_seed, base_seed+1, ...
std::vector<FlRunResult> RunFederatedRepeated(const FederatedSystem& system,
                                              const FlOptions& options,
                                              int num_runs,
                                              uint64_t base_seed);

/// Global / Local baselines with matched budgets.
BaselineResult RunGlobal(const FederatedSystem& system, int rounds,
                         const hgn::TrainOptions& train,
                         const hgn::EvalOptions& eval, uint64_t run_seed,
                         bool eval_every_round = false);
BaselineResult RunLocal(const FederatedSystem& system, int rounds,
                        const hgn::TrainOptions& train,
                        const hgn::EvalOptions& eval, uint64_t run_seed);

/// Cross-run summary of repeated federated runs.
struct RepeatedSummary {
  metrics::MeanStd final_auc;
  metrics::MeanStd final_mrr;
  double mean_total_uplink_groups = 0.0;
  double mean_total_uplink_scalars = 0.0;
  /// Mean over runs of the straggler-bound uplink total (sum over rounds of
  /// the slowest participant's scalars) — what a synchronous deployment
  /// actually waits for.
  double mean_total_max_uplink_scalars = 0.0;
  /// Mean over runs of the measured wire-format totals (fl/wire.h):
  /// serialized bytes in each direction, including headers and bit-packed
  /// mask overhead, and the full-group scalar coverage shipped down under
  /// the version-tracked request model.
  double mean_total_uplink_bytes = 0.0;
  double mean_total_downlink_bytes = 0.0;
  double mean_total_downlink_scalars = 0.0;
  /// Per-round curves across runs (empty when eval_every_round was off).
  std::vector<double> mean_auc_per_round;
  std::vector<double> min_auc_per_round;
  std::vector<double> max_auc_per_round;
};
RepeatedSummary Summarize(const std::vector<FlRunResult>& runs);

}  // namespace fedda::fl

#endif  // FEDDA_FL_EXPERIMENT_H_
