#ifndef FEDDA_FL_NETWORK_H_
#define FEDDA_FL_NETWORK_H_

#include <vector>

#include "fl/network_model.h"
#include "fl/runner.h"

namespace fedda::fl {

// The simulator itself is instantaneous; the NetworkModel constants
// (fl/network_model.h) convert a finished run's transmission accounting
// into estimated wall-clock time so "fewer transmitted parameters" can be
// read as "faster rounds" (time-to-accuracy), the way a deployment would
// experience FedDA.

/// Wall-clock estimate for one round and the running total.
struct RoundTiming {
  double round_sec = 0.0;
  double cumulative_sec = 0.0;
};

/// Estimates per-round durations for a finished run. Synchronous rounds:
/// duration = latency + downlink(straggler) + compute(E epochs) +
/// uplink(straggler). A synchronous round ends when its *slowest*
/// participant finishes, so both transfer phases are charged with the
/// round's straggler: records carrying measured wire bytes
/// (RoundRecord::max_uplink_bytes > 0) are charged their real
/// max_downlink_bytes / max_uplink_bytes — masks, headers, and the
/// version-tracked downlink included — instead of a flat full-model
/// broadcast. Legacy fallbacks mirror the uplink-scalars one: histories
/// without wire bytes are charged `model_scalars` of downlink per round and
/// max_uplink_scalars (or, before that field existed, the per-participant
/// mean) of uplink. Rounds with no participants cost only the latency.
/// `model_scalars` is the full model size N in scalars (used only by the
/// legacy path); `local_epochs` the E used in the run.
///
/// Synchronous histories only: a semi-async run already measures its
/// network time in virtual_time_sec with these same constants, so
/// re-estimating here would double-count every transfer — passing a
/// kSemiAsync result is a CHECK failure.
std::vector<RoundTiming> SimulateTiming(const FlRunResult& result,
                                        const NetworkModel& model,
                                        int64_t model_scalars,
                                        int local_epochs);

/// First cumulative time (seconds) at which the run's evaluated AUC reaches
/// `target_auc`, or -1 if never. Requires per-round evaluation in `result`.
double TimeToAccuracy(const FlRunResult& result,
                      const std::vector<RoundTiming>& timing,
                      double target_auc);

}  // namespace fedda::fl

#endif  // FEDDA_FL_NETWORK_H_
