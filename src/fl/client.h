#ifndef FEDDA_FL_CLIENT_H_
#define FEDDA_FL_CLIENT_H_

#include <memory>
#include <vector>

#include "graph/hetero_graph.h"
#include "hgn/link_prediction.h"
#include "tensor/parameter_store.h"

namespace fedda::fl {

/// One federated client: owns its local sub-heterograph, its task edges
/// (link-prediction targets restricted to its specialized types), and its
/// local copy of the model parameters.
///
/// Clients never expose raw graph data to the runner; the only things that
/// cross the "network" are parameter values (down) and updated parameter
/// values for requested groups (up).
class Client {
 public:
  /// Link-prediction client (the paper's setting). `model` must outlive the
  /// client; `reference_store` provides the parameter structure.
  /// `local_task_edges` are edge ids in `local_graph`'s own edge space.
  Client(int id, const hgn::SimpleHgn* model, graph::HeteroGraph local_graph,
         std::vector<graph::EdgeId> local_task_edges,
         const tensor::ParameterStore& reference_store);

  /// Generic client over any local objective (e.g. node classification):
  /// the FL protocol only needs a TrainableTask. The task owns whatever
  /// graph/state it trains on.
  Client(int id, std::unique_ptr<hgn::TrainableTask> task,
         const tensor::ParameterStore& reference_store);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// ClientUpdate of Algorithm 1: replaces local weights with the broadcast
  /// global weights, runs E local epochs of mini-batch training, and leaves
  /// the result in params(). Returns the mean local training loss. A client
  /// whose update was taken (TakeUpdate) is re-materialized from `global`
  /// with identical values, so seeded results don't depend on whether the
  /// server kept or consumed the previous round's update.
  double Update(const tensor::ParameterStore& global,
                const hgn::TrainOptions& options, core::Rng* rng);

  /// Hands the post-training weights to the server by move: the returned
  /// store owns the update and the client holds no parameters until the
  /// next broadcast rebuilds them. This is what keeps streaming aggregation
  /// O(model) on the server — each update is freed right after it is folded
  /// into the running sums instead of staying alive in clients_ until the
  /// end of the round.
  tensor::ParameterStore TakeUpdate();

  /// False between TakeUpdate() and the next Update().
  bool has_params() const { return store_.num_groups() > 0; }

  /// Continues training from the current local weights without a broadcast
  /// (used by the Local baseline).
  double TrainLocalOnly(const hgn::TrainOptions& options, core::Rng* rng);

  int id() const { return id_; }
  const tensor::ParameterStore& params() const { return store_; }
  tensor::ParameterStore* mutable_params() { return &store_; }
  /// Only valid for link-prediction clients built from a local graph.
  const graph::HeteroGraph& local_graph() const {
    FEDDA_CHECK(local_graph_ != nullptr) << "client has no owned graph";
    return *local_graph_;
  }
  /// Local training examples (edges or labeled nodes).
  int64_t num_task_edges() const { return task_->num_examples(); }

 private:
  int id_;
  /// Heap-allocated so the task's pointer stays valid (LP clients only).
  std::unique_ptr<graph::HeteroGraph> local_graph_;
  std::unique_ptr<hgn::TrainableTask> task_;
  tensor::ParameterStore store_;
};

}  // namespace fedda::fl

#endif  // FEDDA_FL_CLIENT_H_
