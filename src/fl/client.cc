#include "fl/client.h"

#include <utility>

namespace fedda::fl {

Client::Client(int id, const hgn::SimpleHgn* model,
               graph::HeteroGraph local_graph,
               std::vector<graph::EdgeId> local_task_edges,
               const tensor::ParameterStore& reference_store)
    : id_(id),
      local_graph_(
          std::make_unique<graph::HeteroGraph>(std::move(local_graph))),
      store_(reference_store) {
  task_ = std::make_unique<hgn::LinkPredictionTask>(
      model, local_graph_.get(), std::move(local_task_edges));
  store_.ZeroGrads();
}

Client::Client(int id, std::unique_ptr<hgn::TrainableTask> task,
               const tensor::ParameterStore& reference_store)
    : id_(id), task_(std::move(task)), store_(reference_store) {
  FEDDA_CHECK(task_ != nullptr);
  store_.ZeroGrads();
}

double Client::Update(const tensor::ParameterStore& global,
                      const hgn::TrainOptions& options, core::Rng* rng) {
  if (store_.num_groups() == 0) {
    // Re-materialize after TakeUpdate(): a full copy carries the same
    // values CopyValuesFrom would have written, and ZeroGrads restores the
    // constructor's gradient state.
    store_ = global;
    store_.ZeroGrads();
  } else {
    store_.CopyValuesFrom(global);
  }
  return TrainLocalOnly(options, rng);
}

tensor::ParameterStore Client::TakeUpdate() {
  FEDDA_CHECK_GT(store_.num_groups(), 0) << "update already taken";
  tensor::ParameterStore update = std::move(store_);
  store_ = tensor::ParameterStore();
  return update;
}

double Client::TrainLocalOnly(const hgn::TrainOptions& options,
                              core::Rng* rng) {
  return task_->TrainRound(&store_, options, rng);
}

}  // namespace fedda::fl
