#include "core/binary_io.h"

#include <cstring>

namespace fedda::core {

namespace {
constexpr size_t kMaxStringLength = 1 << 20;
}  // namespace

Status BinaryWriter::Open(const std::string& path) {
  out_.open(path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
  return status_;
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_.good()) status_ = Status::IoError("write failed");
}

void BinaryWriter::WriteU32(uint32_t value) { WriteRaw(&value, sizeof(value)); }
void BinaryWriter::WriteU64(uint64_t value) { WriteRaw(&value, sizeof(value)); }
void BinaryWriter::WriteI64(int64_t value) { WriteRaw(&value, sizeof(value)); }
void BinaryWriter::WriteFloat(float value) { WriteRaw(&value, sizeof(value)); }
void BinaryWriter::WriteDouble(double value) {
  WriteRaw(&value, sizeof(value));
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU32(static_cast<uint32_t>(value.size()));
  WriteRaw(value.data(), value.size());
}

void BinaryWriter::WriteFloats(const std::vector<float>& values) {
  WriteRaw(values.data(), values.size() * sizeof(float));
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteRaw(bytes.data(), bytes.size());
}

Status BinaryWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_.good() && status_.ok()) {
      status_ = Status::IoError("flush failed");
    }
    out_.close();
  }
  return status_;
}

Status BinaryReader::Open(const std::string& path) {
  in_.open(path, std::ios::in | std::ios::binary);
  if (!in_.is_open()) {
    status_ = Status::IoError("cannot open for reading: " + path);
    return status_;
  }
  // The size is the budget every block read is validated against: a
  // decoded count that implies more bytes than the file holds is rejected
  // before any allocation.
  in_.seekg(0, std::ios::end);
  const std::streamoff size = in_.tellg();
  in_.seekg(0, std::ios::beg);
  if (size < 0 || !in_.good()) {
    status_ = Status::IoError("cannot determine file size: " + path);
    return status_;
  }
  file_size_ = static_cast<size_t>(size);
  return status_;
}

size_t BinaryReader::remaining() {
  if (!status_.ok()) return 0;
  const std::streamoff pos = in_.tellg();
  if (pos < 0 || static_cast<size_t>(pos) > file_size_) return 0;
  return file_size_ - static_cast<size_t>(pos);
}

void BinaryReader::ReadRaw(void* data, size_t size) {
  if (!status_.ok()) return;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    status_ = Status::IoError("unexpected end of file");
  }
}

uint32_t BinaryReader::ReadU32() {
  uint32_t value = 0;
  ReadRaw(&value, sizeof(value));
  return value;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t value = 0;
  ReadRaw(&value, sizeof(value));
  return value;
}

int64_t BinaryReader::ReadI64() {
  int64_t value = 0;
  ReadRaw(&value, sizeof(value));
  return value;
}

float BinaryReader::ReadFloat() {
  float value = 0.0f;
  ReadRaw(&value, sizeof(value));
  return value;
}

double BinaryReader::ReadDouble() {
  double value = 0.0;
  ReadRaw(&value, sizeof(value));
  return value;
}

std::string BinaryReader::ReadString() {
  const uint32_t length = ReadU32();
  if (!status_.ok()) return {};
  if (length > kMaxStringLength || length > remaining()) {
    status_ = Status::IoError("string length implausible (corrupt file?)");
    return {};
  }
  std::string value(length, '\0');
  ReadRaw(value.data(), length);
  return value;
}

std::vector<float> BinaryReader::ReadFloats(size_t count) {
  if (!status_.ok()) return {};
  if (count > remaining() / sizeof(float)) {
    status_ = Status::IoError("float block exceeds file");
    return {};
  }
  std::vector<float> values(count, 0.0f);
  ReadRaw(values.data(), count * sizeof(float));
  return values;
}

std::vector<uint8_t> BinaryReader::ReadBytes(size_t count) {
  if (!status_.ok()) return {};
  if (count > remaining()) {
    status_ = Status::IoError("byte block exceeds file");
    return {};
  }
  std::vector<uint8_t> bytes(count, 0);
  ReadRaw(bytes.data(), count);
  return bytes;
}

bool BinaryReader::AtEof() {
  if (!status_.ok()) return false;
  return in_.peek() == std::char_traits<char>::eof();
}

void ByteWriter::WriteRaw(const void* data, size_t size) {
  const uint8_t* begin = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), begin, begin + size);
}

void ByteWriter::WriteU8(uint8_t value) { WriteRaw(&value, sizeof(value)); }
void ByteWriter::WriteU32(uint32_t value) { WriteRaw(&value, sizeof(value)); }
void ByteWriter::WriteU64(uint64_t value) { WriteRaw(&value, sizeof(value)); }
void ByteWriter::WriteI64(int64_t value) { WriteRaw(&value, sizeof(value)); }
void ByteWriter::WriteFloat(float value) { WriteRaw(&value, sizeof(value)); }
void ByteWriter::WriteDouble(double value) { WriteRaw(&value, sizeof(value)); }

void ByteWriter::WriteString(const std::string& value) {
  WriteU32(static_cast<uint32_t>(value.size()));
  WriteRaw(value.data(), value.size());
}

void ByteWriter::WriteFloats(const std::vector<float>& values) {
  WriteRaw(values.data(), values.size() * sizeof(float));
}

void ByteWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteRaw(bytes.data(), bytes.size());
}

void ByteReader::ReadRaw(void* data, size_t size) {
  if (!status_.ok()) return;
  if (size > size_ - pos_) {
    status_ = Status::IoError("unexpected end of payload");
    return;
  }
  // A zero-length read may carry data() of an empty container, which is
  // null — and passing null to memcpy is UB even for size 0.
  if (size > 0) std::memcpy(data, data_ + pos_, size);
  pos_ += size;
}

uint8_t ByteReader::ReadU8() {
  uint8_t value = 0;
  ReadRaw(&value, sizeof(value));
  return value;
}

uint32_t ByteReader::ReadU32() {
  uint32_t value = 0;
  ReadRaw(&value, sizeof(value));
  return value;
}

uint64_t ByteReader::ReadU64() {
  uint64_t value = 0;
  ReadRaw(&value, sizeof(value));
  return value;
}

int64_t ByteReader::ReadI64() {
  int64_t value = 0;
  ReadRaw(&value, sizeof(value));
  return value;
}

float ByteReader::ReadFloat() {
  float value = 0.0f;
  ReadRaw(&value, sizeof(value));
  return value;
}

double ByteReader::ReadDouble() {
  double value = 0.0;
  ReadRaw(&value, sizeof(value));
  return value;
}

std::string ByteReader::ReadString() {
  const uint32_t length = ReadU32();
  if (!status_.ok()) return {};
  if (length > kMaxStringLength || length > remaining()) {
    status_ = Status::IoError("string length implausible (corrupt payload?)");
    return {};
  }
  std::string value(length, '\0');
  ReadRaw(value.data(), length);
  return value;
}

std::vector<float> ByteReader::ReadFloats(size_t count) {
  if (!status_.ok()) return {};
  if (count > remaining() / sizeof(float)) {
    status_ = Status::IoError("float block exceeds payload");
    return {};
  }
  std::vector<float> values(count, 0.0f);
  ReadRaw(values.data(), count * sizeof(float));
  return values;
}

std::vector<uint8_t> ByteReader::ReadBytes(size_t count) {
  if (!status_.ok()) return {};
  if (count > remaining()) {
    status_ = Status::IoError("byte block exceeds payload");
    return {};
  }
  std::vector<uint8_t> bytes(count, 0);
  ReadRaw(bytes.data(), count);
  return bytes;
}

}  // namespace fedda::core
