#ifndef FEDDA_CORE_ARENA_H_
#define FEDDA_CORE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.h"

namespace fedda::core {

/// Bump allocator for tape-lifetime tensor scratch (dropout masks, row
/// norms, ...). One arena lives per training round; Reset() between batches
/// rewinds the cursor without releasing the blocks, so steady-state rounds
/// allocate nothing from the system.
///
/// Contracts:
///  - NOT thread-safe. Allocation happens on the thread that builds the
///    tape; worker threads only read the returned buffers.
///  - Every pointer is aligned to at least 32 bytes (AVX2 vector loads).
///  - Reset() keeps the blocks but ASan-poisons the recycled bytes: a
///    use-after-reset is an ASan error, not a silent read of stale data
///    (see core/sanitize.h). The next Allocate unpoisons exactly the bytes
///    it hands out.
///  - The arena must outlive every Graph whose ops borrowed scratch from it
///    (ops.cc backward closures hold raw pointers into the arena).
class Arena {
 public:
  /// Blocks grow geometrically from `min_block_bytes`; oversized requests
  /// get a dedicated block.
  explicit Arena(size_t min_block_bytes = 1 << 16);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (which
  /// must be a power of two <= kBlockAlign). bytes == 0 yields a valid
  /// pointer that must not be dereferenced.
  void* Allocate(size_t bytes, size_t align = kMinAlign);

  /// Typed convenience: `count` default-uninitialized floats.
  float* AllocateFloats(size_t count) {
    return static_cast<float*>(Allocate(count * sizeof(float)));
  }

  /// Rewinds every block to empty, keeping the capacity for reuse. All
  /// previously returned pointers become invalid (and poisoned under ASan).
  void Reset();

  /// Total capacity across retained blocks (test/telemetry hook).
  size_t capacity_bytes() const;
  size_t num_blocks() const { return blocks_.size(); }

  static constexpr size_t kMinAlign = 32;   // promise to SIMD loads
  static constexpr size_t kBlockAlign = 64; // block base alignment

 private:
  struct Block {
    char* data = nullptr;
    size_t capacity = 0;
    size_t used = 0;
  };

  Block& AddBlock(size_t min_capacity);

  std::vector<Block> blocks_;
  size_t current_ = 0;  // index of the block the cursor lives in
  size_t min_block_bytes_;
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_ARENA_H_
