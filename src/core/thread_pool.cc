#include "core/thread_pool.h"

#include "core/check.h"

namespace fedda::core {

ThreadPool::ThreadPool(int num_threads) {
  FEDDA_CHECK_GE(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // Inline mode.
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  for (int64_t i = 0; i < n; ++i) {
    Schedule([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace fedda::core
