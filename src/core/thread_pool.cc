#include "core/thread_pool.h"

#include <algorithm>

#include "core/check.h"

namespace fedda::core {

thread_local const ThreadPool* ThreadPool::current_worker_pool_ = nullptr;

ThreadPool::ThreadPool(int num_threads) {
  FEDDA_CHECK_GE(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // Inline mode.
    return;
  }
  {
    MutexLock lock(&mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  FEDDA_CHECK(current_worker_pool_ != this)
      << "— ThreadPool::Wait() called from inside a worker task of the same "
         "pool. The calling task counts as in-flight, so the wait could "
         "never return; use ParallelFor/ParallelForRange for nested "
         "parallelism instead.";
  if (workers_.empty()) return;
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(&mutex_);
}

void ThreadPool::RunChunks(const std::shared_ptr<ForLoop>& loop) {
  // Claim chunks until none remain. A thread that claims a chunk is
  // guaranteed `loop->fn` is still alive: ParallelForRange cannot return
  // before `completed == num_chunks`, and this chunk has not completed yet.
  // A thread that claims no chunk never dereferences `fn`.
  while (true) {
    const int64_t c = loop->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= loop->num_chunks) return;
    const int64_t begin = c * loop->chunk;
    const int64_t end = std::min(loop->n, begin + loop->chunk);
    (*loop->fn)(begin, end);
    {
      ForLoop& wave = *loop;
      MutexLock lock(&wave.mutex);
      ++wave.completed;
      if (wave.completed == wave.num_chunks) wave.done.NotifyAll();
    }
  }
}

void ThreadPool::ParallelForRange(
    int64_t n, int64_t grain, const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  grain = std::max<int64_t>(grain, 1);
  if (workers_.empty() || n <= grain) {
    fn(0, n);
    return;
  }

  auto loop = std::make_shared<ForLoop>();
  loop->n = n;
  // A few chunks per worker so fast threads pick up slack from slow ones,
  // but never smaller than the grain (which callers size so per-chunk work
  // amortizes the scheduling overhead).
  const int64_t target_chunks = static_cast<int64_t>(workers_.size()) * 4;
  loop->chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  loop->num_chunks = (loop->n + loop->chunk - 1) / loop->chunk;
  loop->fn = &fn;

  // Helpers beyond the chunk count would only contend on the cursor.
  const int64_t helpers = std::min<int64_t>(
      static_cast<int64_t>(workers_.size()), loop->num_chunks - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    Schedule([loop] { RunChunks(loop); });
  }

  // The caller participates: even when every worker is busy (e.g. this is a
  // nested call from inside a client-update task) the loop completes on the
  // calling thread alone, so nesting cannot deadlock.
  RunChunks(loop);

  ForLoop& wave = *loop;
  MutexLock lock(&wave.mutex);
  while (wave.completed != wave.num_chunks) wave.done.Wait(&wave.mutex);
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                             int64_t grain) {
  ParallelForRange(n, grain, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::WorkerLoop() {
  current_worker_pool_ = this;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(&mutex_);
      }
      // Shutdown drains the queue first: a task scheduled before the
      // destructor ran still executes.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelForRange(ThreadPool* pool, int64_t n, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (pool == nullptr || pool->num_threads() == 0) {
    fn(0, n);
    return;
  }
  pool->ParallelForRange(n, grain, fn);
}

}  // namespace fedda::core
