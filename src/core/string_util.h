#ifndef FEDDA_CORE_STRING_UTIL_H_
#define FEDDA_CORE_STRING_UTIL_H_

#include <string>
#include <vector>

namespace fedda::core {

/// Splits `text` on `delimiter`; keeps empty fields.
std::vector<std::string> Split(const std::string& text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& separator);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `precision` decimal digits.
std::string FormatDouble(double value, int precision);

/// Formats an integer with thousands separators ("12,345").
std::string FormatWithCommas(int64_t value);

/// Whether `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace fedda::core

#endif  // FEDDA_CORE_STRING_UTIL_H_
