#ifndef FEDDA_CORE_CHECK_H_
#define FEDDA_CORE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fedda::core::internal {

/// Stream sink that prints the accumulated message and aborts on
/// destruction. Used only by the FEDDA_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failure at " << file << ":" << line << ": "
            << condition;
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace fedda::core::internal

/// Aborts with a diagnostic when `condition` is false. For invariants and
/// programmer errors (the library does not use exceptions). Additional
/// context can be streamed: FEDDA_CHECK(x > 0) << "x=" << x;
#define FEDDA_CHECK(condition)                                        \
  if (!(condition))                                                   \
  ::fedda::core::internal::CheckFailureStream("FEDDA_CHECK", __FILE__, \
                                              __LINE__, #condition)

/// Comparison checks print both operands — name and value each — so a
/// failure log alone pinpoints which side was wrong:
///   FEDDA_CHECK_EQ failure at f.cc:12: a == b a = 3 , b = 4 ,
#define FEDDA_CHECK_OP_(a, b, op)                                          \
  if (!((a)op(b)))                                                         \
  ::fedda::core::internal::CheckFailureStream(                             \
      "FEDDA_CHECK", __FILE__, __LINE__, #a " " #op " " #b)                \
      << #a << "=" << (a) << "," << #b << "=" << (b) << ","

#define FEDDA_CHECK_EQ(a, b) FEDDA_CHECK_OP_(a, b, ==)
#define FEDDA_CHECK_NE(a, b) FEDDA_CHECK_OP_(a, b, !=)
#define FEDDA_CHECK_LT(a, b) FEDDA_CHECK_OP_(a, b, <)
#define FEDDA_CHECK_LE(a, b) FEDDA_CHECK_OP_(a, b, <=)
#define FEDDA_CHECK_GT(a, b) FEDDA_CHECK_OP_(a, b, >)
#define FEDDA_CHECK_GE(a, b) FEDDA_CHECK_OP_(a, b, >=)

/// Aborts if `status_expr` does not evaluate to an OK status.
#define FEDDA_CHECK_OK(status_expr)                                       \
  do {                                                                    \
    const ::fedda::core::Status _s = (status_expr);                       \
    FEDDA_CHECK(_s.ok()) << _s.ToString();                                \
  } while (0)

#endif  // FEDDA_CORE_CHECK_H_
