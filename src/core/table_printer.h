#ifndef FEDDA_CORE_TABLE_PRINTER_H_
#define FEDDA_CORE_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace fedda::core {

/// Accumulates rows and prints a column-aligned ASCII table, used by the
/// bench harness to render paper-style tables on stdout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  /// Renders the table (header, separator, rows).
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_TABLE_PRINTER_H_
