#ifndef FEDDA_CORE_LOGGING_H_
#define FEDDA_CORE_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace fedda::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level below which log lines are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log line: buffers the message and emits it (with level tag) on
/// destruction, so `FEDDA_LOG(kInfo) << "x=" << x;` is a single atomic write.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fedda::core

#define FEDDA_LOG(level)                                            \
  if (::fedda::core::LogLevel::level >= ::fedda::core::GetLogLevel()) \
  ::fedda::core::internal::LogMessage(::fedda::core::LogLevel::level, \
                                      __FILE__, __LINE__)

#endif  // FEDDA_CORE_LOGGING_H_
