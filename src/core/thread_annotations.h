#ifndef FEDDA_CORE_THREAD_ANNOTATIONS_H_
#define FEDDA_CORE_THREAD_ANNOTATIONS_H_

/// Portable wrappers for Clang's Thread Safety Analysis attributes (the
/// capability system behind -Wthread-safety; see
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang the
/// macros expand to the real attributes and the analysis proves lock
/// discipline statically at every call site; under any other compiler they
/// expand to nothing, so annotated code stays portable.
///
/// Conventions (DESIGN.md §6b):
///   - Every mutex-guarded member is declared with FEDDA_GUARDED_BY(mu_),
///     never with an informal "guarded by mu_" comment.
///   - Private helpers that assume the lock is held take FEDDA_REQUIRES(mu_)
///     instead of re-locking.
///   - Blocking entry points that must NOT be called with the object's lock
///     held are annotated FEDDA_EXCLUDES(mu_).
///   - FEDDA_NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last resort;
///     every use must carry a comment explaining why the analysis cannot see
///     the invariant (the repo linter's acceptance bar is zero undocumented
///     uses).

#if defined(__clang__)
#define FEDDA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FEDDA_THREAD_ANNOTATION_(x)  // no-op off-Clang
#endif

/// Declares a class to be a capability (e.g. a mutex). `x` names the
/// capability kind in diagnostics ("mutex", "role", ...).
#define FEDDA_CAPABILITY(x) FEDDA_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (e.g. core::MutexLock).
#define FEDDA_SCOPED_CAPABILITY FEDDA_THREAD_ANNOTATION_(scoped_lockable)

/// Data members: may only be read or written while holding `x`.
#define FEDDA_GUARDED_BY(x) FEDDA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer members: the pointed-to data may only be touched while holding
/// `x` (the pointer itself is unguarded).
#define FEDDA_PT_GUARDED_BY(x) FEDDA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Functions: caller must already hold every listed capability; the
/// function neither acquires nor releases it.
#define FEDDA_REQUIRES(...) \
  FEDDA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Functions: acquires the listed capabilities and holds them on return.
#define FEDDA_ACQUIRE(...) \
  FEDDA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Functions: releases capabilities the caller holds on entry.
#define FEDDA_RELEASE(...) \
  FEDDA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Functions: acquires the capability iff the return value equals the
/// first argument (e.g. FEDDA_TRY_ACQUIRE(true) on a try_lock).
#define FEDDA_TRY_ACQUIRE(...) \
  FEDDA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Functions: caller must NOT hold the listed capabilities (the function
/// acquires them itself, or would deadlock/self-deadlock if they were
/// held). This is how blocking calls advertise "do not call under my
/// lock".
#define FEDDA_EXCLUDES(...) \
  FEDDA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations between capabilities (deadlock prevention).
#define FEDDA_ACQUIRED_BEFORE(...) \
  FEDDA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define FEDDA_ACQUIRED_AFTER(...) \
  FEDDA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Functions returning a reference/pointer to a capability.
#define FEDDA_RETURN_CAPABILITY(x) FEDDA_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the calling thread holds the capability; informs
/// the analysis without acquiring anything.
#define FEDDA_ASSERT_CAPABILITY(x) \
  FEDDA_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: turns the analysis off for one function. Must carry a
/// justifying comment at every use site.
#define FEDDA_NO_THREAD_SAFETY_ANALYSIS \
  FEDDA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FEDDA_CORE_THREAD_ANNOTATIONS_H_
