#include "core/arena.h"

#include <algorithm>
#include <new>

#include "core/sanitize.h"

namespace fedda::core {

namespace {
size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}
}  // namespace

Arena::Arena(size_t min_block_bytes)
    : min_block_bytes_(std::max<size_t>(min_block_bytes, kBlockAlign)) {}

Arena::~Arena() {
  for (Block& block : blocks_) {
    // Unpoison before returning the memory to the allocator: ASan's
    // deallocation hooks inspect the region, and leaving someone else's
    // future allocation poisoned would be a false positive factory.
    FEDDA_ASAN_UNPOISON(block.data, block.capacity);
    ::operator delete(block.data, std::align_val_t{kBlockAlign});
  }
}

Arena::Block& Arena::AddBlock(size_t min_capacity) {
  size_t capacity = min_block_bytes_;
  if (!blocks_.empty()) capacity = blocks_.back().capacity * 2;
  capacity = std::max(capacity, AlignUp(min_capacity, kBlockAlign));
  Block block;
  block.data = static_cast<char*>(
      ::operator new(capacity, std::align_val_t{kBlockAlign}));
  block.capacity = capacity;
  FEDDA_ASAN_POISON(block.data, block.capacity);
  blocks_.push_back(block);
  return blocks_.back();
}

void* Arena::Allocate(size_t bytes, size_t align) {
  FEDDA_CHECK(align > 0 && (align & (align - 1)) == 0)
      << "alignment must be a power of two";
  FEDDA_CHECK_LE(align, kBlockAlign);
  align = std::max(align, kMinAlign);
  // Find (or create) a block with room, starting at the cursor block so the
  // scan is O(1) amortized. Blocks before `current_` are full by invariant.
  while (true) {
    if (current_ >= blocks_.size()) {
      AddBlock(bytes);
      current_ = blocks_.size() - 1;
    }
    Block& block = blocks_[current_];
    const size_t offset = AlignUp(block.used, align);
    if (offset + bytes <= block.capacity) {
      block.used = offset + bytes;
      char* ptr = block.data + offset;
      FEDDA_ASAN_UNPOISON(ptr, bytes);
      return ptr;
    }
    ++current_;
  }
}

void Arena::Reset() {
  for (Block& block : blocks_) {
    block.used = 0;
    FEDDA_ASAN_POISON(block.data, block.capacity);
  }
  current_ = 0;
}

size_t Arena::capacity_bytes() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return total;
}

}  // namespace fedda::core
