#ifndef FEDDA_CORE_RNG_H_
#define FEDDA_CORE_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fedda::core {

/// Deterministic, splittable pseudo-random number generator.
///
/// The engine is xoshiro256** seeded through SplitMix64, which gives
/// high-quality streams from arbitrary 64-bit seeds. Every stochastic
/// component of the library (data synthesis, client partitioning, negative
/// sampling, weight init, FL exploration) takes an `Rng` so whole experiments
/// are reproducible from a single seed. `Split()` derives an independent
/// child stream, which keeps per-client randomness stable regardless of
/// client execution order.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Derives an independent child generator. Deterministic: the n-th split
  /// of an Rng in a given state is always the same stream.
  Rng Split();

  /// Raw xoshiro256** engine state, for moving a stream across a process
  /// boundary (the socket transport ships a split child's state to the
  /// remote client so multi-process runs draw the same randomness as
  /// in-process ones). FromState(SaveState()) continues the stream exactly.
  std::array<uint64_t, 4> SaveState() const;
  static Rng FromState(const std::array<uint64_t, 4>& state);

  /// Uniform in [0, 1).
  double Uniform();
  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  /// Uniform integer in [lo, hi). Requires lo < hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Standard normal via Box-Muller.
  double Gaussian();
  /// Normal with the given mean and stddev.
  double Gaussian(double mean, double stddev);
  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Zipf-like sample in [0, n): P(k) proportional to 1/(k+1)^exponent.
  /// Used for power-law degree distributions in the graph generators.
  size_t Zipf(size_t n, double exponent);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_RNG_H_
