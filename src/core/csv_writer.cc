#include "core/csv_writer.h"

#include <cmath>

#include "core/check.h"
#include "core/string_util.h"

namespace fedda::core {

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& header) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError("cannot open CSV file for writing: " + path);
  }
  WriteRow(header);
  return Status::OK();
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  FEDDA_CHECK(out_.is_open()) << "CsvWriter::WriteRow before Open";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeField(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    // Non-finite values mark "no measurement" (NaN: a round where every
    // client failed) or a diverged metric (±Inf: an exploded loss): an
    // empty field keeps plotting/averaging tools from reading either
    // sentinel as a real value the way a 0.0 — or a literal "inf" a CSV
    // parser chokes on — would.
    fields.push_back(std::isfinite(v) ? FormatDouble(v, 6) : std::string());
  }
  WriteRow(fields);
}

void CsvWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace fedda::core
