#include "core/table_printer.h"

#include <algorithm>
#include <iostream>

namespace fedda::core {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  Row r;
  r.cells = std::move(row);
  r.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(r));
}

void TablePrinter::AddSeparator() { pending_separator_ = true; }

std::string TablePrinter::ToString() const {
  size_t num_cols = header_.size();
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.cells.size());

  std::vector<size_t> widths(num_cols, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row.cells);

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t i = 0; i < num_cols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto render_separator = [&]() {
    std::string line = "+";
    for (size_t i = 0; i < num_cols; ++i) {
      line += std::string(widths[i] + 2, '-') + "+";
    }
    return line + "\n";
  };

  std::string out = render_separator();
  out += render_line(header_);
  out += render_separator();
  for (const auto& row : rows_) {
    if (row.separator_before) out += render_separator();
    out += render_line(row.cells);
  }
  out += render_separator();
  return out;
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace fedda::core
