#ifndef FEDDA_CORE_MUTEX_H_
#define FEDDA_CORE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace fedda::core {

/// Annotated drop-in replacement for std::mutex. It holds exactly one
/// std::mutex and adds no state or behavior (tests/core/mutex_test.cc
/// asserts layout and semantics match); what it adds is the
/// FEDDA_CAPABILITY declaration, which lets Clang's Thread Safety Analysis
/// prove at compile time that every FEDDA_GUARDED_BY member is only touched
/// under its lock. libstdc++'s std::mutex carries no such annotations, so a
/// wrapper is the only way to get the checking with a portable standard
/// library.
class FEDDA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FEDDA_ACQUIRE() { mu_.lock(); }
  void Unlock() FEDDA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() FEDDA_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for core::Mutex, equivalent to std::lock_guard but visible to
/// the analysis as a scoped capability: the constructor acquires, the
/// destructor releases, and any guarded access in between type-checks.
class FEDDA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FEDDA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() FEDDA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with core::Mutex. Wait() requires the caller
/// to hold `mu` (enforced statically); internally it adopts the already-
/// locked std::mutex for the duration of the wait and releases the adoption
/// before returning, so the caller's MutexLock stays the sole owner. The
/// capability is held on entry and on return — the transient unlock inside
/// std::condition_variable::wait is invisible to callers, exactly as with a
/// plain std::unique_lock wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups are possible; always wait in a predicate loop.
  void Wait(Mutex* mu) FEDDA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's scope still owns the mutex.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_MUTEX_H_
