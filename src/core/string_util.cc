#include "core/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace fedda::core {

std::vector<std::string> Split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(size), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string FormatWithCommas(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace fedda::core
