#ifndef FEDDA_CORE_FLAGS_H_
#define FEDDA_CORE_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace fedda::core {

/// Minimal `--name=value` command-line parser for the bench and example
/// binaries. Unknown flags are an error so typos in sweep scripts fail fast.
///
/// Usage:
///   FlagParser flags;
///   int rounds = 40;
///   flags.AddInt("rounds", &rounds, "communication rounds");
///   FEDDA_CHECK_OK(flags.Parse(argc, argv));
class FlagParser {
 public:
  FlagParser() = default;
  FlagParser(const FlagParser&) = delete;
  FlagParser& operator=(const FlagParser&) = delete;

  void AddInt(const std::string& name, int64_t* value, const std::string& help);
  void AddInt(const std::string& name, int* value, const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);

  /// Parses argv; supports `--name=value` and `--help`. On `--help`, prints
  /// usage and returns a non-OK status so the caller can exit.
  [[nodiscard]] Status Parse(int argc, char** argv);

  /// Renders the flag list with defaults and help strings.
  std::string Usage() const;

 private:
  enum class Kind { kInt64, kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
    std::string default_value;
  };

  void Register(const std::string& name, Kind kind, void* target,
                const std::string& help, std::string default_value);
  Status SetValue(Flag* flag, const std::string& text,
                  const std::string& name);

  std::map<std::string, Flag> flags_;
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_FLAGS_H_
