#include "core/logging.h"

#include <atomic>

namespace fedda::core {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // File basename only; full paths add noise.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::ostream& os = (level_ >= LogLevel::kWarning) ? std::cerr : std::clog;
  os << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace fedda::core
