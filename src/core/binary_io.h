#ifndef FEDDA_CORE_BINARY_IO_H_
#define FEDDA_CORE_BINARY_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/status.h"

namespace fedda::core {

/// Little-endian binary writer for checkpoint files. All write methods are
/// no-ops after the first failure; check `status()` (or the Close() result)
/// once at the end rather than after every call.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;
  // A failure here is unreportable; callers that care call Close() directly.
  ~BinaryWriter() { (void)Close(); }

  /// Opens `path` for writing (truncates).
  Status Open(const std::string& path);

  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteFloat(float value);
  void WriteDouble(double value);
  /// Length-prefixed UTF-8 string.
  void WriteString(const std::string& value);
  /// Raw float block (no length prefix; callers write the count first).
  void WriteFloats(const std::vector<float>& values);
  /// Raw byte block (no length prefix; callers write the count first).
  void WriteBytes(const std::vector<uint8_t>& bytes);

  [[nodiscard]] const Status& status() const { return status_; }

  /// Flushes and closes; returns the accumulated status.
  Status Close();

 private:
  void WriteRaw(const void* data, size_t size);

  std::ofstream out_;
  Status status_;
};

/// Little-endian binary reader matching BinaryWriter. Read methods return
/// defaults after the first failure; check `status()` at the end.
///
/// Like ByteReader, block reads validate their count against the bytes
/// actually left in the file *before* allocating — a corrupt or hostile
/// length field surfaces as a clean IoError, never an unbounded
/// allocation. Decoders should additionally bound counts they multiply
/// (rows*cols, dim*count) against `remaining()` before calling ReadFloats
/// so the product cannot overflow.
class BinaryReader {
 public:
  BinaryReader() = default;
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status Open(const std::string& path);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();
  /// Reads exactly `count` floats.
  std::vector<float> ReadFloats(size_t count);
  /// Reads exactly `count` raw bytes.
  std::vector<uint8_t> ReadBytes(size_t count);

  [[nodiscard]] const Status& status() const { return status_; }
  /// Bytes left before end-of-file (0 after a failure).
  [[nodiscard]] size_t remaining();
  /// True when the stream is positioned at end-of-file with no errors.
  [[nodiscard]] bool AtEof();

 private:
  void ReadRaw(void* data, size_t size);

  std::ifstream in_;
  size_t file_size_ = 0;
  Status status_;
};

/// In-memory little-endian byte-buffer writer with the same encoding as
/// BinaryWriter; this is the substrate of the round-payload wire format
/// (fl/wire.h), where payloads are serialized to byte vectors rather than
/// files. Writes never fail.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteFloat(float value);
  void WriteDouble(double value);
  /// Length-prefixed UTF-8 string.
  void WriteString(const std::string& value);
  /// Raw float block (no length prefix; callers write the count first).
  void WriteFloats(const std::vector<float>& values);
  /// Raw byte block (no length prefix; callers write the count first).
  void WriteBytes(const std::vector<uint8_t>& bytes);

  int64_t size() const { return static_cast<int64_t>(buffer_.size()); }
  const std::vector<uint8_t>& bytes() const { return buffer_; }
  /// Moves the accumulated buffer out (the writer is empty afterwards).
  std::vector<uint8_t> Release() { return std::move(buffer_); }

 private:
  void WriteRaw(const void* data, size_t size);

  std::vector<uint8_t> buffer_;
};

/// Bounds-checked reader over a byte buffer, matching ByteWriter. The first
/// out-of-bounds read latches an IoError status and every later read
/// returns defaults — truncated or corrupt payloads surface as a clean
/// Status, never as out-of-bounds access. The buffer is borrowed and must
/// outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();
  /// Reads exactly `count` floats.
  std::vector<float> ReadFloats(size_t count);
  /// Reads exactly `count` raw bytes.
  std::vector<uint8_t> ReadBytes(size_t count);

  [[nodiscard]] const Status& status() const { return status_; }
  /// Bytes left to read (0 after a failure).
  [[nodiscard]] size_t remaining() const {
    return status_.ok() ? size_ - pos_ : 0;
  }
  /// True when the whole buffer was consumed with no errors.
  [[nodiscard]] bool AtEnd() const { return status_.ok() && pos_ == size_; }

 private:
  void ReadRaw(void* data, size_t size);

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_BINARY_IO_H_
