#ifndef FEDDA_CORE_BINARY_IO_H_
#define FEDDA_CORE_BINARY_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/status.h"

namespace fedda::core {

/// Little-endian binary writer for checkpoint files. All write methods are
/// no-ops after the first failure; check `status()` (or the Close() result)
/// once at the end rather than after every call.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;
  ~BinaryWriter() { Close(); }

  /// Opens `path` for writing (truncates).
  Status Open(const std::string& path);

  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteFloat(float value);
  /// Length-prefixed UTF-8 string.
  void WriteString(const std::string& value);
  /// Raw float block (no length prefix; callers write the count first).
  void WriteFloats(const std::vector<float>& values);

  const Status& status() const { return status_; }

  /// Flushes and closes; returns the accumulated status.
  Status Close();

 private:
  void WriteRaw(const void* data, size_t size);

  std::ofstream out_;
  Status status_;
};

/// Little-endian binary reader matching BinaryWriter. Read methods return
/// defaults after the first failure; check `status()` at the end.
class BinaryReader {
 public:
  BinaryReader() = default;
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status Open(const std::string& path);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadFloat();
  std::string ReadString();
  /// Reads exactly `count` floats.
  std::vector<float> ReadFloats(size_t count);

  const Status& status() const { return status_; }
  /// True when the stream is positioned at end-of-file with no errors.
  bool AtEof();

 private:
  void ReadRaw(void* data, size_t size);

  std::ifstream in_;
  Status status_;
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_BINARY_IO_H_
