#ifndef FEDDA_CORE_CSV_WRITER_H_
#define FEDDA_CORE_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "core/status.h"

namespace fedda::core {

/// Writes rows of experiment results to a CSV file. Fields containing
/// commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter() = default;
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Opens `path` for writing (truncates) and emits `header` as first row.
  [[nodiscard]] Status Open(const std::string& path,
                            const std::vector<std::string>& header);

  /// Appends one row. Must be called after a successful Open().
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: formats every double with 6 decimals. NaN values are
  /// written as empty fields (the no-measurement convention; see
  /// RoundRecord::mean_local_loss), never as the string "nan".
  void WriteRow(const std::vector<double>& values);

  /// Flushes and closes. Safe to call multiple times.
  void Close();

  bool is_open() const { return out_.is_open(); }

  ~CsvWriter() { Close(); }

 private:
  static std::string EscapeField(const std::string& field);

  std::ofstream out_;
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_CSV_WRITER_H_
