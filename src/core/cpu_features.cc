#include "core/cpu_features.h"

namespace fedda::core {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults CPUID once and caches internally; it is
  // also async-signal-safe after the first call.
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasNeon() {
#if defined(__aarch64__) || defined(_M_ARM64)
  return true;  // Advanced SIMD is architecturally mandatory on AArch64.
#else
  return false;
#endif
}

}  // namespace fedda::core
