#include "core/flags.h"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <iostream>

#include "core/check.h"
#include "core/string_util.h"

namespace fedda::core {

void FlagParser::Register(const std::string& name, Kind kind, void* target,
                          const std::string& help,
                          std::string default_value) {
  FEDDA_CHECK(flags_.find(name) == flags_.end())
      << "duplicate flag:" << name;
  flags_[name] = Flag{kind, target, help, std::move(default_value)};
}

void FlagParser::AddInt(const std::string& name, int64_t* value,
                        const std::string& help) {
  Register(name, Kind::kInt64, value, help, std::to_string(*value));
}

void FlagParser::AddInt(const std::string& name, int* value,
                        const std::string& help) {
  Register(name, Kind::kInt, value, help, std::to_string(*value));
}

void FlagParser::AddDouble(const std::string& name, double* value,
                           const std::string& help) {
  Register(name, Kind::kDouble, value, help, FormatDouble(*value, 4));
}

void FlagParser::AddBool(const std::string& name, bool* value,
                         const std::string& help) {
  Register(name, Kind::kBool, value, help, *value ? "true" : "false");
}

void FlagParser::AddString(const std::string& name, std::string* value,
                           const std::string& help) {
  Register(name, Kind::kString, value, help, *value);
}

Status FlagParser::SetValue(Flag* flag, const std::string& text,
                            const std::string& name) {
  // strtoll/strtod report overflow only through errno: on ERANGE they
  // return a clamped value (LLONG_MAX, ±HUGE_VAL, or a denormal) that
  // parses "successfully". Without the errno check, --rounds with 20
  // digits silently became LLONG_MAX instead of an error.
  char* end = nullptr;
  errno = 0;
  switch (flag->kind) {
    case Kind::kInt64: {
      int64_t v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad integer for --" + name + ": " +
                                       text);
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("integer out of range for --" + name +
                                       ": " + text);
      }
      *static_cast<int64_t*>(flag->target) = v;
      return Status::OK();
    }
    case Kind::kInt: {
      long v = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad integer for --" + name + ": " +
                                       text);
      }
      // `long` is wider than `int` on LP64, so a value strtol accepts can
      // still truncate in the cast; both failure modes are out-of-range.
      if (errno == ERANGE || v < INT_MIN || v > INT_MAX) {
        return Status::InvalidArgument("integer out of range for --" + name +
                                       ": " + text);
      }
      *static_cast<int*>(flag->target) = static_cast<int>(v);
      return Status::OK();
    }
    case Kind::kDouble: {
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double for --" + name + ": " +
                                       text);
      }
      if (errno == ERANGE) {
        // Overflow (±HUGE_VAL) or underflow (a denormal or 0 standing in
        // for a value the format cannot represent) — both silently distort
        // the experiment the flag configures.
        return Status::InvalidArgument("double out of range for --" + name +
                                       ": " + text);
      }
      *static_cast<double*>(flag->target) = v;
      return Status::OK();
    }
    case Kind::kBool: {
      if (text == "true" || text == "1") {
        *static_cast<bool*>(flag->target) = true;
      } else if (text == "false" || text == "0") {
        *static_cast<bool*>(flag->target) = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " + text);
      }
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(flag->target) = text;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << Usage();
      return Status(StatusCode::kFailedPrecondition, "help requested");
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected argument: " + arg);
    }
    const size_t eq = arg.find('=');
    std::string name, value;
    if (eq == std::string::npos) {
      // `--flag` alone is allowed for bools (meaning true).
      name = arg.substr(2);
      value = "true";
    } else {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name + "\n" +
                                     Usage());
    }
    FEDDA_RETURN_IF_ERROR(SetValue(&it->second, value, name));
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::string out = "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + "  (default: " + flag.default_value + ")  " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace fedda::core
