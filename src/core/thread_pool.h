#ifndef FEDDA_CORE_THREAD_POOL_H_
#define FEDDA_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedda::core {

/// Fixed-size worker pool used to run independent client updates in
/// parallel. With num_threads == 0 the pool degenerates to inline execution
/// (useful on single-core hosts and for deterministic debugging).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (the library is exception-free).
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), distributing across the pool, and waits.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace fedda::core

#endif  // FEDDA_CORE_THREAD_POOL_H_
