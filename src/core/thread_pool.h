#ifndef FEDDA_CORE_THREAD_POOL_H_
#define FEDDA_CORE_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace fedda::core {

/// Long-lived fixed-size worker pool shared by the FL round loop (client-level
/// parallelism) and the tensor kernels (row-level parallelism). A pool is
/// constructed once per run and reused across thousands of ParallelFor waves.
/// With num_threads == 0 the pool degenerates to inline execution (useful on
/// single-core hosts and for deterministic debugging).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (the library is exception-free).
  /// Tasks may Schedule further tasks; Wait() covers those as well.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished. Calling it from inside
  /// a worker task of the same pool CHECK-fails immediately (the caller's
  /// own task counts as in-flight, so it could never return); the check
  /// runs before any lock is taken, so the abort is prompt even if the
  /// caller holds unrelated locks. Use ParallelFor/ParallelForRange for
  /// nested parallelism instead. FEDDA_EXCLUDES makes calling it while
  /// already holding mutex_ (a guaranteed self-deadlock) a compile error
  /// under -Wthread-safety.
  void Wait() FEDDA_EXCLUDES(mutex_);

  /// Runs fn(i) for i in [0, n), then returns. Work is split into contiguous
  /// chunks of at least `grain` indices — one enqueue per chunk, not per
  /// index — and the calling thread participates in executing chunks, so the
  /// call is safe (and deadlock-free) from inside a worker task. Chunk
  /// boundaries never change results as long as fn(i) only writes state owned
  /// by index i.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                   int64_t grain = 1);

  /// Range flavour: runs fn(begin, end) over a partition of [0, n) into
  /// contiguous chunks of at least `grain` indices. Preferred for hot kernels
  /// (no per-index std::function dispatch). Same nesting guarantees as
  /// ParallelFor.
  void ParallelForRange(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  /// Shared state of one ParallelFor wave. Helpers claim chunks via an atomic
  /// cursor; the caller waits until every chunk has completed. Everything
  /// except `completed` is written once before the wave is published and
  /// read-only afterwards, so only the completion count needs the lock.
  struct ForLoop {
    int64_t n = 0;
    int64_t chunk = 1;
    int64_t num_chunks = 0;
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    std::atomic<int64_t> next_chunk{0};
    Mutex mutex;
    CondVar done;
    int64_t completed FEDDA_GUARDED_BY(mutex) = 0;
  };

  void WorkerLoop();
  static void RunChunks(const std::shared_ptr<ForLoop>& loop);

  /// The pool whose WorkerLoop owns the current thread (null on non-worker
  /// threads). Lets Wait() detect the deadlocking call-from-worker case.
  static thread_local const ThreadPool* current_worker_pool_;

  std::vector<std::thread> workers_;  // immutable after the constructor
  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ FEDDA_GUARDED_BY(mutex_);
  int in_flight_ FEDDA_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ FEDDA_GUARDED_BY(mutex_) = false;
};

/// Chunked parallel-for over [0, n) that tolerates a null or worker-less pool
/// by running inline. The tensor kernels call this with the graph's optional
/// pool pointer.
void ParallelForRange(ThreadPool* pool, int64_t n, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& fn);

}  // namespace fedda::core

#endif  // FEDDA_CORE_THREAD_POOL_H_
