#include "core/rng.h"

#include <cmath>
#include <numeric>

#include "core/check.h"

namespace fedda::core {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

Rng Rng::Split() { return Rng(Next()); }

std::array<uint64_t, 4> Rng::SaveState() const {
  return {state_[0], state_[1], state_[2], state_[3]};
}

Rng Rng::FromState(const std::array<uint64_t, 4>& state) {
  Rng rng;
  for (size_t i = 0; i < state.size(); ++i) rng.state_[i] = state[i];
  return rng;
}

double Rng::Uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  FEDDA_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FEDDA_CHECK_LT(lo, hi);
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo)));
}

double Rng::Gaussian() {
  // Box-Muller; one value per call keeps the stream splittable-stable.
  double u1 = Uniform();
  double u2 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  FEDDA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FEDDA_CHECK_GE(w, 0.0);
    total += w;
  }
  FEDDA_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double exponent) {
  FEDDA_CHECK_GT(n, 0u);
  // Inverse-CDF over the (small) support; callers use modest n.
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) total += std::pow(k + 1.0, -exponent);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += std::pow(k + 1.0, -exponent);
    if (r < acc) return k;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  FEDDA_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index array; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(static_cast<uint64_t>(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace fedda::core
