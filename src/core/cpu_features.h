#ifndef FEDDA_CORE_CPU_FEATURES_H_
#define FEDDA_CORE_CPU_FEATURES_H_

namespace fedda::core {

/// Runtime CPU capability probes for the kernel dispatcher
/// (src/tensor/kernels/). Each probe is evaluated once per process; the
/// answers never change while the process runs, so callers may cache them
/// freely. On architectures where a feature cannot exist the probe is a
/// compile-time false — no CPUID is ever issued.

/// x86-64 AVX2 (256-bit integer + float SIMD). False on non-x86 builds.
bool CpuHasAvx2();

/// AArch64 Advanced SIMD. Baseline on every AArch64 core, so this is a
/// compile-target probe rather than a runtime one. False on non-ARM builds.
bool CpuHasNeon();

}  // namespace fedda::core

#endif  // FEDDA_CORE_CPU_FEATURES_H_
