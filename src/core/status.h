#ifndef FEDDA_CORE_STATUS_H_
#define FEDDA_CORE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fedda::core {

/// Canonical error codes, modeled after the usual database-library set
/// (RocksDB / Arrow style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...).
[[nodiscard]] const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result for recoverable failures.
///
/// The library does not use exceptions; functions that can fail in ways the
/// caller is expected to handle return `Status` (or `Result<T>`).
/// Programming errors are handled by the CHECK macros in `check.h` instead.
///
/// The class is `[[nodiscard]]`: silently dropping a returned Status is a
/// compile-time warning (an error under FEDDA_WERROR=ON). The rare caller
/// that genuinely cannot act on a failure casts to void with a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error `Status`. Accessing `value()` on an
/// error result aborts (see check.h); test `ok()` first. Like Status, the
/// type is `[[nodiscard]]`: ignoring a returned Result discards both the
/// value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or a non-OK status keeps call sites
  /// terse (`return 42;` / `return Status::NotFound(...)`).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace fedda::core

/// Propagates a non-OK status from an expression to the caller.
#define FEDDA_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::fedda::core::Status _status = (expr);         \
    if (!_status.ok()) return _status;              \
  } while (0)

#endif  // FEDDA_CORE_STATUS_H_
