#ifndef FEDDA_CORE_SANITIZE_H_
#define FEDDA_CORE_SANITIZE_H_

/// Sanitizer-suppression attributes for the few functions whose unsigned
/// wraparound is the algorithm, not a bug. The fuzz build (FEDDA_FUZZ)
/// compiles with Clang's `-fsanitize=integer`, which flags *unsigned*
/// overflow too — legal C++, but usually a sign of length-arithmetic gone
/// wrong on the untrusted-bytes surface. Hash mixers are the deliberate
/// exception; annotate them rather than weakening the whole build.
///
/// GCC accepts no_sanitize only for sanitizers it implements, and
/// "unsigned-integer-overflow" is Clang-only, so the macro is empty there.
#if defined(__clang__)
#define FEDDA_NO_SANITIZE_UNSIGNED_WRAP \
  __attribute__((no_sanitize("unsigned-integer-overflow")))
#else
#define FEDDA_NO_SANITIZE_UNSIGNED_WRAP
#endif

#endif  // FEDDA_CORE_SANITIZE_H_
