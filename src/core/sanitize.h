#ifndef FEDDA_CORE_SANITIZE_H_
#define FEDDA_CORE_SANITIZE_H_

/// Sanitizer-suppression attributes for the few functions whose unsigned
/// wraparound is the algorithm, not a bug. The fuzz build (FEDDA_FUZZ)
/// compiles with Clang's `-fsanitize=integer`, which flags *unsigned*
/// overflow too — legal C++, but usually a sign of length-arithmetic gone
/// wrong on the untrusted-bytes surface. Hash mixers are the deliberate
/// exception; annotate them rather than weakening the whole build.
///
/// GCC accepts no_sanitize only for sanitizers it implements, and
/// "unsigned-integer-overflow" is Clang-only, so the macro is empty there.
#if defined(__clang__)
#define FEDDA_NO_SANITIZE_UNSIGNED_WRAP \
  __attribute__((no_sanitize("unsigned-integer-overflow")))
#else
#define FEDDA_NO_SANITIZE_UNSIGNED_WRAP
#endif

/// AddressSanitizer manual-poisoning hooks. The arena allocator
/// (core/arena.h) poisons recycled regions on Reset() so a stale pointer
/// into a previous round's scratch trips ASan instead of silently reading
/// reused memory. Outside ASan builds the macros compile to nothing.
#if defined(__SANITIZE_ADDRESS__)
#define FEDDA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FEDDA_ASAN 1
#endif
#endif

#if defined(FEDDA_ASAN)
#include <sanitizer/asan_interface.h>
#define FEDDA_ASAN_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define FEDDA_ASAN_UNPOISON(addr, size) \
  ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define FEDDA_ASAN_POISON(addr, size) ((void)(addr), (void)(size))
#define FEDDA_ASAN_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

#endif  // FEDDA_CORE_SANITIZE_H_
