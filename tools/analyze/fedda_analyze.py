#!/usr/bin/env python3
"""AST-level static analyzer for the fedda tree (libclang over
compile_commands.json).

PR 5's regex lint enforces what a line can show; this tool enforces what
only the AST and the call graph can show. It parses every TU named in
compile_commands.json with libclang, distills each function into a small
JSON fact record (the IR), and runs pure-Python checks over the whole
program. The two layers are deliberately separable: extraction needs
libclang (CI has it; dev boxes may not — the tool then skips with a
notice), while the checks and their unit tests run anywhere.

Checks (rule ids carry the `az-` prefix so the shared
tools/lint_allowlist.txt can tell analyzer entries from lint entries):

  az-tb-abort        A FEDDA_CHECK*/CHECK-family abort (or abort()/exit())
                     reachable from the untrusted-bytes entry points that
                     lint_fedda.py inventories (Decode*/Parse*/Deserialize*/
                     Load*/Restore*/ReadFrame plus Status-returning byte
                     consumers like RemoteClient::ServeRound). A remote
                     peer or corrupt file must never abort the process;
                     decoders fail with a Status (DESIGN.md §12/§14).
  az-tb-alloc        An allocation (resize/reserve/new[]/reader block read)
                     in a trust-boundary-reachable function whose size
                     comes from a wire read with no intervening branch on
                     that value. core::ByteReader/BinaryReader block reads
                     validate counts against remaining() internally and are
                     exempt.
  az-lock-cycle      A cycle in the global lock-order graph built from
                     core::MutexLock scopes and Mutex::Lock calls,
                     intra- and interprocedurally (Clang thread-safety
                     proves *which* lock, not *in what order*).
  az-unordered-iter  Range-for over a std::unordered_map/set where the
                     iteration order can reach numerics or serialized bytes
                     (src/fl/, src/tensor/, or any Save/Write/Serialize/
                     Encode function). AST-level successor of lint's regex
                     det-unordered-iter: it sees through typedefs, members,
                     and function returns the regex cannot.
  az-fp-contract     A contractible float expression (a*b+c shape) in a
                     src/tensor/kernels/ TU compiled without
                     -ffp-contract=off. Contraction to FMA silently breaks
                     the scalar<->SIMD bit-exactness contract
                     (DESIGN.md §13).
  az-status-ignored  A core::Status/Result local initialized but never read
                     again — [[nodiscard]] cannot see a value that *was*
                     assigned; this check can.

Trust-boundary walk policy: the BFS starts at the shared surface inventory
(lint_fedda.py --emit-surface) and only descends into callees defined in
"boundary modules" — src/net/ plus the .h/.cc pairs of every surface
header plus src/core/binary_io. Past that line (e.g. Client::Update) input
is the process's own validated state; walking further would indict the
whole training stack for CHECKs that guard programmer errors, not bytes.

Suppression: tools/lint_allowlist.txt entries `az-<rule> <path> -- <why>`.
This tool owns the az- namespace: it enforces the justification and flags
unused az- entries; lint_fedda.py does the same for its own rules and
additionally lets an az-unordered-iter entry cover its regex twin.

Usage:
  fedda_analyze.py [--root DIR] [--compdb PATH] [--surface PATH]
                   [--allowlist PATH] [--json OUT] [--emit-ir OUT]
                   [--from-ir PATH] [--scope PREFIX] [--require]

Exit codes: 0 clean (or libclang absent without --require), 1 findings,
2 cannot run and --require was given.
"""

from __future__ import annotations

import argparse
import glob
import json
import re
import shlex
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
import lint_fedda  # noqa: E402  (shared surface inventory + allowlist path)

ABORT_MACRO_RE = re.compile(r"^(FEDDA_)?D?CHECK(_[A-Z0-9_]+)?$")
ABORT_CALLS = {"abort", "exit", "_Exit", "quick_exit", "terminate"}
READ_CALL_RE = re.compile(r"^Read[A-Z]\w*$|^Read$")
BLOCK_READS = {"ReadBytes", "ReadFloats", "ReadString"}
SAFE_READER_RE = re.compile(r"\b(?:ByteReader|BinaryReader)\b")
STATUS_TYPE_RE = re.compile(r"(?:^|::)(?:Status|Result<)")
SERIAL_FN_RE = re.compile(r"^(?:Save|Write|Serialize|Encode)")
FLOAT_TYPES = {"float", "double", "long double"}
KERNEL_PATH_MARK = ("src/tensor/kernels/", "/kernels/")
EXTRA_BOUNDARY_STEMS = ("src/core/binary_io",)

RULE_IDS = ("az-tb-abort", "az-tb-alloc", "az-lock-cycle",
            "az-unordered-iter", "az-fp-contract", "az-status-ignored")


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def render(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}


# -- libclang loading -------------------------------------------------------

def load_cindex():
    """Returns (cindex module, None) or (None, reason). Retries the load
    against distro library paths because Debian/Ubuntu ship libclang as
    libclang-<ver>.so without the unversioned symlink the bindings probe."""
    try:
        from clang import cindex  # type: ignore
    except ImportError as exc:
        return None, f"python clang bindings unavailable ({exc})"
    try:
        cindex.Index.create()
        return cindex, None
    except Exception:
        pass
    candidates = (
        sorted(glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*"), reverse=True)
        + sorted(glob.glob("/usr/lib/llvm-*/lib/libclang.so*"), reverse=True)
        + sorted(glob.glob("/usr/lib/*/libclang-*.so*"), reverse=True))
    for candidate in candidates:
        try:
            cindex.Config.set_library_file(candidate)
            cindex.Index.create()
            return cindex, None
        except Exception:
            continue
    return None, "libclang shared library not found"


# -- extraction: libclang -> JSON IR ---------------------------------------

def compile_units(compdb_path: Path, root: Path, scope: str) -> list[dict]:
    """compile_commands.json entries filtered to `scope` under `root`,
    normalized to {file (absolute), args, fp_contract_off}."""
    units = []
    for entry in json.loads(compdb_path.read_text()):
        directory = Path(entry.get("directory", "."))
        resolved = (directory / entry["file"]).resolve()
        try:
            rel = resolved.relative_to(root).as_posix()
        except ValueError:
            continue
        if scope and not rel.startswith(scope):
            continue
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry["command"])
        args = []
        skip_next = False
        for token in argv[1:]:
            if skip_next:
                skip_next = False
                continue
            if token == "-c":
                continue
            if token == "-o":
                skip_next = True
                continue
            if not token.startswith("-") and \
                    (directory / token).resolve() == resolved:
                continue
            args.append(token)
        args += ["-working-directory", str(directory)]
        units.append({"file": str(resolved), "args": args,
                      "fp_contract_off": "-ffp-contract=off" in args})
    return units


class Extractor:
    """One pass of libclang over every TU, distilling per-function facts.

    Known approximations (DESIGN.md §14 documents them for readers of
    findings): lambdas are attributed to their enclosing function; a
    Mutex::Lock() call is treated as held to the end of its scope; taint
    is intra-procedural (a count passed as a parameter is the callee's
    caller's problem); `std::vector<T> v(n)` constructor sizing is not a
    recognized sink; member locks are identified per-field, not
    per-instance."""

    FN_KIND_NAMES = ("FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR",
                     "DESTRUCTOR", "CONVERSION_FUNCTION",
                     "FUNCTION_TEMPLATE")
    SCOPE_KIND_NAMES = ("NAMESPACE", "CLASS_DECL", "STRUCT_DECL",
                        "CLASS_TEMPLATE",
                        "CLASS_TEMPLATE_PARTIAL_SPECIALIZATION",
                        "UNEXPOSED_DECL", "LINKAGE_SPEC")

    def __init__(self, cindex, root: Path):
        self.cindex = cindex
        self.root = root
        self.ck = cindex.CursorKind
        self.fn_kinds = {getattr(self.ck, n) for n in self.FN_KIND_NAMES}
        self.scope_kinds = {getattr(self.ck, n)
                            for n in self.SCOPE_KIND_NAMES}
        self.functions: dict[str, dict] = {}
        self.tus: dict[str, dict] = {}
        self.macros: set[tuple[str, int, str]] = set()
        self.errors: list[str] = []

    def rel(self, path: str) -> str | None:
        try:
            return Path(path).resolve().relative_to(self.root).as_posix()
        except ValueError:
            return None

    def run(self, units: list[dict]) -> dict:
        index = self.cindex.Index.create()
        options = self.cindex.TranslationUnit.\
            PARSE_DETAILED_PROCESSING_RECORD
        for unit in units:
            try:
                tu = index.parse(unit["file"], args=unit["args"],
                                 options=options)
            except Exception as exc:
                self.errors.append(f"{unit['file']}: parse failed ({exc})")
                continue
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal:
                self.errors.append(
                    f"{unit['file']}: {fatal[0].spelling}")
            main_rel = self.rel(unit["file"]) or unit["file"]
            self.tus[main_rel] = {
                "fp_contract_off": unit["fp_contract_off"]}
            self.harvest_tu(tu, main_rel)
        self.attach_macros()
        return {"tus": self.tus,
                "functions": sorted(self.functions.values(),
                                    key=lambda f: (f["file"], f["line"]))}

    def harvest_tu(self, tu, main_rel: str) -> None:
        for cursor in tu.cursor.get_children():
            self.visit_decl(cursor, main_rel)

    def visit_decl(self, cursor, main_rel: str) -> None:
        loc = cursor.location
        if loc.file is None or self.rel(loc.file.name) is None:
            return
        kind = cursor.kind
        if kind == self.ck.MACRO_INSTANTIATION:
            name = cursor.spelling
            if ABORT_MACRO_RE.match(name):
                self.macros.add(
                    (self.rel(loc.file.name), loc.line, name))
            return
        if kind in self.scope_kinds:
            for child in cursor.get_children():
                self.visit_decl(child, main_rel)
            return
        if kind in self.fn_kinds and cursor.is_definition():
            self.harvest_function(cursor, main_rel)

    def qualified(self, cursor) -> str:
        parts = []
        node = cursor
        while node is not None and \
                node.kind != self.ck.TRANSLATION_UNIT:
            if node.spelling:
                parts.append(node.spelling)
            node = node.semantic_parent
        return "::".join(reversed(parts))

    def harvest_function(self, cursor, main_rel: str) -> None:
        usr = cursor.get_usr()
        if not usr or usr in self.functions:
            return
        file_rel = self.rel(cursor.location.file.name)
        if file_rel is None:
            return
        display = self.qualified(cursor)
        # The locking primitives themselves (core::Mutex/MutexLock and the
        # fixture minis) must not contribute lock facts: their internal
        # mu_->Lock() would alias every caller's lock to one node and
        # fabricate cycles.
        parent = cursor.semantic_parent
        primitive = parent is not None and parent.spelling in (
            "Mutex", "MutexLock", "CondVar")
        fact = {
            "usr": usr, "name": cursor.spelling, "display": display,
            "file": file_rel, "tu": main_rel,
            "line": cursor.extent.start.line,
            "end_line": cursor.extent.end.line,
            "calls": [], "aborts": [], "locks": [], "lock_pairs": [],
            "allocs": [], "taints": {}, "guards": [],
            "unordered_fors": [], "contractions": [], "status_vars": [],
        }
        refs: list[int] = []
        status_decls: list[tuple[int, dict]] = []
        self.scan(cursor, fact, [], refs, status_decls, primitive)
        counts: dict[int, int] = defaultdict(int)
        for h in refs:
            counts[h] += 1
        for decl_hash, var in status_decls:
            var["uses"] = counts.get(decl_hash, 0)
            fact["status_vars"].append(var)
        self.functions[usr] = fact

    # -- body scan ----------------------------------------------------

    def scan(self, node, fact, active, refs, status_decls,
             primitive) -> None:
        ck = self.ck
        for child in node.get_children():
            kind = child.kind
            if kind == ck.COMPOUND_STMT:
                self.scan(child, fact, list(active), refs, status_decls,
                          primitive)
            elif kind == ck.DECL_STMT:
                self.scan(child, fact, active, refs, status_decls,
                          primitive)
            elif kind == ck.VAR_DECL:
                self.var_decl(child, fact, active, status_decls,
                              primitive)
                self.scan(child, fact, active, refs, status_decls,
                          primitive)
            elif kind == ck.IF_STMT:
                self.guard(child, fact)
                self.scan(child, fact, list(active), refs, status_decls,
                          primitive)
            elif kind == ck.CXX_FOR_RANGE_STMT:
                self.range_for(child, fact)
                self.scan(child, fact, list(active), refs, status_decls,
                          primitive)
            elif kind == ck.CALL_EXPR:
                self.call(child, fact, active, primitive)
                self.scan(child, fact, active, refs, status_decls,
                          primitive)
            elif kind == ck.CXX_NEW_EXPR:
                self.new_expr(child, fact)
                self.scan(child, fact, active, refs, status_decls,
                          primitive)
            elif kind in (ck.BINARY_OPERATOR,
                          ck.COMPOUND_ASSIGNMENT_OPERATOR):
                self.binop(child, fact, kind)
                self.scan(child, fact, active, refs, status_decls,
                          primitive)
            elif kind == ck.DECL_REF_EXPR:
                if child.referenced is not None:
                    refs.append(child.referenced.hash)
                self.scan(child, fact, active, refs, status_decls,
                          primitive)
            else:
                self.scan(child, fact, active, refs, status_decls,
                          primitive)

    def canonical_type(self, cursor) -> str:
        try:
            return cursor.type.get_canonical().spelling
        except Exception:
            return ""

    def tokens(self, cursor) -> list:
        try:
            return list(cursor.get_tokens())
        except Exception:
            return []

    def token_paths(self, cursor) -> list[str]:
        """Dotted member paths in an expression, from its token stream
        ("entry . size" / "e->size" -> "entry.size"); `this->` is
        stripped so member taints match their uses."""
        spellings = [t.spelling for t in self.tokens(cursor)]
        paths: set[str] = set()
        current = None
        i = 0
        while i < len(spellings):
            tok = spellings[i]
            if re.match(r"[A-Za-z_]\w*$", tok):
                current = tok if current is None else current + "." + tok
                if i + 1 < len(spellings) and \
                        spellings[i + 1] in (".", "->"):
                    i += 2
                    continue
                if current.startswith("this."):
                    current = current[len("this."):]
                if current:
                    paths.add(current)
                current = None
            i += 1
        return sorted(paths)

    def has_read_call(self, cursor) -> bool:
        if cursor.kind == self.ck.CALL_EXPR and \
                READ_CALL_RE.match(cursor.spelling or ""):
            return True
        return any(self.has_read_call(c) for c in cursor.get_children())

    def op_spelling(self, cursor) -> str | None:
        """Operator token of a binary/compound-assignment expression:
        the punctuation between the operand extents (the clang-14
        bindings expose no opcode)."""
        kids = list(cursor.get_children())
        if len(kids) != 2:
            return None
        lhs_end = kids[0].extent.end.offset
        rhs_start = kids[1].extent.start.offset
        for token in self.tokens(cursor):
            offset = token.extent.start.offset
            if lhs_end <= offset < rhs_start and \
                    token.kind.name == "PUNCTUATION":
                return token.spelling
        return None

    def unwrap(self, cursor):
        ck = self.ck
        while cursor.kind in (ck.UNEXPOSED_EXPR, ck.PAREN_EXPR):
            kids = list(cursor.get_children())
            if len(kids) != 1:
                break
            cursor = kids[0]
        return cursor

    def lock_id(self, cursor, fact) -> str | None:
        """Identity of the Mutex an init/receiver expression names:
        qualified field/variable name; locals are qualified by function
        so two functions' local mutexes stay distinct."""
        ck = self.ck
        stack = [cursor]
        while stack:
            node = stack.pop(0)
            if node.kind in (ck.MEMBER_REF_EXPR, ck.DECL_REF_EXPR):
                ref = node.referenced
                if ref is not None and "Mutex" in self.canonical_type(ref) \
                        and "MutexLock" not in self.canonical_type(ref):
                    if ref.kind in (self.ck.VAR_DECL, self.ck.PARM_DECL) \
                            and ref.semantic_parent is not None and \
                            ref.semantic_parent.kind in self.fn_kinds:
                        return fact["display"] + "::" + ref.spelling
                    return self.qualified(ref)
            stack.extend(node.get_children())
        paths = self.token_paths(cursor)
        return paths[-1] if paths else None

    def acquire(self, lock_id, line, fact, active) -> None:
        for held in active:
            fact["lock_pairs"].append([held, lock_id, line])
        fact["locks"].append({"id": lock_id, "line": line})
        active.append(lock_id)

    def var_decl(self, cursor, fact, active, status_decls,
                 primitive) -> None:
        canonical = self.canonical_type(cursor)
        line = cursor.location.line
        init = [c for c in cursor.get_children()
                if c.kind.is_expression()]
        if "MutexLock" in canonical and not primitive:
            lock = self.lock_id(cursor, fact)
            if lock:
                self.acquire(lock, line, fact, active)
            return
        if init and STATUS_TYPE_RE.search(canonical):
            status_decls.append((cursor.hash, {
                "name": cursor.spelling, "line": line,
                "type": canonical.split("<")[0].split("::")[-1],
                "uses": 0}))
        if init and any(self.has_read_call(c) for c in init):
            fact["taints"].setdefault(cursor.spelling, line)

    def guard(self, cursor, fact) -> None:
        ck = self.ck
        stmt_kids = [c for c in cursor.get_children()
                     if c.kind.is_statement() and c.kind != ck.DECL_STMT]
        boundary = stmt_kids[0].extent.start.offset if stmt_kids \
            else cursor.extent.end.offset
        text = "".join(
            t.spelling for t in self.tokens(cursor)
            if t.extent.start.offset < boundary)
        text = text.replace("->", ".")
        fact["guards"].append({"text": text,
                               "line": cursor.location.line})

    def range_for(self, cursor, fact) -> None:
        ck = self.ck
        for child in cursor.get_children():
            if child.kind == ck.VAR_DECL or child.kind.is_statement():
                continue
            canonical = self.canonical_type(child)
            if "unordered_map" in canonical or \
                    "unordered_set" in canonical:
                fact["unordered_fors"].append({
                    "line": cursor.location.line,
                    "container": canonical[:60]})
                return

    def call(self, cursor, fact, active, primitive) -> None:
        name = cursor.spelling or ""
        line = cursor.location.line
        referenced = cursor.referenced
        kids = list(cursor.get_children())
        if name in ABORT_CALLS:
            fact["aborts"].append({"line": line, "macro": name + "()"})
        if name == "Lock" and not primitive and kids:
            receiver_type = self.canonical_type(kids[0])
            if "Mutex" in receiver_type and \
                    "MutexLock" not in receiver_type:
                lock = self.lock_id(kids[0], fact)
                if lock:
                    self.acquire(lock, line, fact, active)
        if name in ("resize", "reserve"):
            args = list(cursor.get_arguments())
            if args:
                receiver = self.token_paths(kids[0])[:1] if kids else []
                fact["allocs"].append({
                    "line": line, "sink": name,
                    "paths": self.token_paths(args[0]),
                    "direct": self.has_read_call(args[0]),
                    "recv": receiver[0] if receiver else ""})
        elif name in BLOCK_READS and kids:
            base_kids = list(kids[0].get_children())
            base_type = self.canonical_type(base_kids[0]) \
                if base_kids else self.canonical_type(kids[0])
            if not SAFE_READER_RE.search(base_type):
                args = list(cursor.get_arguments())
                paths = []
                direct = False
                for arg in args:
                    paths.extend(self.token_paths(arg))
                    direct = direct or self.has_read_call(arg)
                fact["allocs"].append({
                    "line": line, "sink": name, "paths": sorted(set(paths)),
                    "direct": direct, "recv": base_type[:40]})
        if name:
            fact["calls"].append({
                "name": name,
                "usr": referenced.get_usr() if referenced else None,
                "line": line, "held": list(active)})

    def new_expr(self, cursor, fact) -> None:
        spellings = [t.spelling for t in self.tokens(cursor)]
        if "[" not in spellings:
            return
        fact["allocs"].append({
            "line": cursor.location.line, "sink": "new[]",
            "paths": self.token_paths(cursor),
            "direct": self.has_read_call(cursor), "recv": "new[]"})

    def binop(self, cursor, fact, kind) -> None:
        op = self.op_spelling(cursor)
        if op is None:
            return
        kids = list(cursor.get_children())
        ck = self.ck
        if kind == ck.BINARY_OPERATOR and op == "=" and len(kids) == 2:
            if self.has_read_call(kids[1]):
                paths = self.token_paths(kids[0])
                if paths:
                    fact["taints"].setdefault(
                        max(paths, key=len), cursor.location.line)
        result_type = self.canonical_type(cursor)
        if result_type.replace("const ", "") not in FLOAT_TYPES:
            return
        contracted = False
        if kind == ck.BINARY_OPERATOR and op in ("+", "-"):
            contracted = any(
                self.unwrap(k).kind == ck.BINARY_OPERATOR and
                self.op_spelling(self.unwrap(k)) == "*"
                for k in kids)
        elif kind == ck.COMPOUND_ASSIGNMENT_OPERATOR and \
                op in ("+=", "-="):
            rhs = self.unwrap(kids[1]) if len(kids) == 2 else None
            contracted = rhs is not None and \
                rhs.kind == ck.BINARY_OPERATOR and \
                self.op_spelling(rhs) == "*"
        if contracted:
            fact["contractions"].append({"line": cursor.location.line})

    def attach_macros(self) -> None:
        by_file: dict[str, list[dict]] = defaultdict(list)
        for fact in self.functions.values():
            by_file[fact["file"]].append(fact)
        for file_rel, line, name in sorted(self.macros):
            owners = [f for f in by_file.get(file_rel, ())
                      if f["line"] <= line <= f["end_line"]]
            if not owners:
                continue
            innermost = max(owners, key=lambda f: f["line"])
            innermost["aborts"].append({"line": line, "macro": name})
        # One abort per line, preferring the macro name over the abort()
        # call its expansion may contain.
        for fact in self.functions.values():
            by_line: dict[int, dict] = {}
            for abort in fact["aborts"]:
                prev = by_line.get(abort["line"])
                if prev is None or (prev["macro"].endswith("()")
                                    and not abort["macro"].endswith("()")):
                    by_line[abort["line"]] = abort
            fact["aborts"] = [by_line[k] for k in sorted(by_line)]


# -- check layer: pure python over the IR ----------------------------------

def short_name(fact: dict) -> str:
    return re.sub(r"\bfedda::", "", fact["display"])


def build_indexes(model: dict):
    by_usr = {f["usr"]: f for f in model["functions"]}
    by_name: dict[str, list[dict]] = defaultdict(list)
    for fact in model["functions"]:
        by_name[fact["name"]].append(fact)
    return by_usr, by_name


def resolve_call(call: dict, by_usr, by_name) -> dict | None:
    if call.get("usr") and call["usr"] in by_usr:
        return by_usr[call["usr"]]
    candidates = by_name.get(call["name"], [])
    if len(candidates) == 1:
        return candidates[0]
    return None


def boundary_predicate(surface: list[dict]):
    """Boundary modules derived from the surface inventory: all of
    src/net/, the header/source stem pair of every other surface file,
    plus src/core/binary_io (the reader layer every decoder uses)."""
    prefixes: set[str] = set()
    stems: set[str] = set(EXTRA_BOUNDARY_STEMS)
    for entry in surface:
        file_rel = entry["file"]
        if file_rel.startswith("src/net/"):
            prefixes.add("src/net/")
        else:
            stems.add(file_rel.rsplit(".", 1)[0])

    def in_boundary(rel: str) -> bool:
        if any(rel.startswith(p) for p in prefixes):
            return True
        return rel.rsplit(".", 1)[0] in stems

    return in_boundary


def trust_reachable(model: dict, surface: list[dict]):
    """BFS over the call graph from the surface entry points, descending
    only into boundary modules. Returns ({usr: fact}, {usr: parent usr})
    for chain rendering."""
    by_usr, by_name = build_indexes(model)
    in_boundary = boundary_predicate(surface)
    names = {entry["name"] for entry in surface}
    seeds = [f for f in model["functions"]
             if f["name"] in names and in_boundary(f["file"])]
    reachable = {f["usr"]: f for f in seeds}
    parent: dict[str, str | None] = {f["usr"]: None for f in seeds}
    queue = list(seeds)
    while queue:
        fact = queue.pop(0)
        for call in fact["calls"]:
            callee = resolve_call(call, by_usr, by_name)
            if callee is None or callee["usr"] in reachable:
                continue
            if not in_boundary(callee["file"]):
                continue
            reachable[callee["usr"]] = callee
            parent[callee["usr"]] = fact["usr"]
            queue.append(callee)
    return reachable, parent


def chain_of(usr: str, parent: dict, reachable: dict) -> str:
    names = []
    node: str | None = usr
    while node is not None:
        names.append(short_name(reachable[node]))
        node = parent.get(node)
    return " <- ".join(names)


def check_trust_boundary(model: dict,
                         surface: list[dict]) -> list[Finding]:
    findings: list[Finding] = []
    reachable, parent = trust_reachable(model, surface)
    for usr, fact in reachable.items():
        chain = chain_of(usr, parent, reachable)
        for abort in fact["aborts"]:
            findings.append(Finding(
                "az-tb-abort", fact["file"], abort["line"],
                f"{abort['macro']} abort in {short_name(fact)} is "
                f"reachable from the untrusted-bytes surface ({chain}); "
                "foreign input must fail with a Status, never abort the "
                "process"))
        for alloc in fact["allocs"]:
            reason = None
            if alloc["direct"]:
                reason = "its size comes straight from a wire read"
            else:
                for path in alloc["paths"]:
                    taint_line = fact["taints"].get(path)
                    if taint_line is None or taint_line > alloc["line"]:
                        continue
                    pattern = re.compile(
                        r"(?<!\w)" + re.escape(path) + r"(?!\w)")
                    guarded = any(
                        taint_line <= g["line"] <= alloc["line"] and
                        pattern.search(g["text"])
                        for g in fact["guards"])
                    if not guarded:
                        reason = (f"`{path}` was read from the wire at "
                                  f"line {taint_line} and never "
                                  "bounds-checked")
                        break
            if reason:
                findings.append(Finding(
                    "az-tb-alloc", fact["file"], alloc["line"],
                    f"{alloc['sink']} in {short_name(fact)} "
                    f"(reached via {chain}): {reason}; compare against "
                    "remaining() before allocating"))
    return findings


def check_lock_order(model: dict) -> list[Finding]:
    by_usr, by_name = build_indexes(model)
    acquires: dict[str, set[str]] = {
        f["usr"]: {l["id"] for l in f["locks"]}
        for f in model["functions"]}
    changed = True
    while changed:
        changed = False
        for fact in model["functions"]:
            mine = acquires[fact["usr"]]
            for call in fact["calls"]:
                callee = resolve_call(call, by_usr, by_name)
                if callee is None:
                    continue
                extra = acquires[callee["usr"]] - mine
                if extra:
                    mine |= extra
                    changed = True
    edges: dict[tuple[str, str], str] = {}
    for fact in model["functions"]:
        for held, taken, line in fact["lock_pairs"]:
            edges.setdefault(
                (held, taken),
                f"{taken} acquired at {fact['file']}:{line} in "
                f"{short_name(fact)} while {held} is held")
        for call in fact["calls"]:
            if not call["held"]:
                continue
            callee = resolve_call(call, by_usr, by_name)
            if callee is None:
                continue
            for lock in acquires[callee["usr"]]:
                for held in call["held"]:
                    edges.setdefault(
                        (held, lock),
                        f"call to {short_name(callee)} at "
                        f"{fact['file']}:{call['line']} acquires {lock} "
                        f"while {held} is held")
    # Cycle detection: iterative DFS strongly-connected components.
    graph: dict[str, list[str]] = defaultdict(list)
    for (a, b) in edges:
        graph[a].append(b)
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root_node: str) -> None:
        work = [(root_node, iter(graph[root_node]))]
        index_of[root_node] = lowlink[root_node] = counter[0]
        counter[0] += 1
        stack.append(root_node)
        on_stack.add(root_node)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent_node = work[-1][0]
                lowlink[parent_node] = min(lowlink[parent_node],
                                           lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in list(graph):
        if node not in index_of:
            strongconnect(node)

    findings: list[Finding] = []
    for component in sccs:
        cyclic = len(component) > 1 or \
            (component[0], component[0]) in edges
        if not cyclic:
            continue
        members = sorted(component)
        provenance = [edges[(a, b)] for (a, b) in sorted(edges)
                      if a in component and b in component]
        # Anchor the finding at the first provenance site.
        anchor = re.search(r"at (\S+):(\d+)", provenance[0])
        path = anchor.group(1) if anchor else "<unknown>"
        line = int(anchor.group(2)) if anchor else 0
        findings.append(Finding(
            "az-lock-cycle", path, line,
            "lock-order cycle between {" + ", ".join(members) + "}: " +
            "; ".join(provenance) +
            " — impose one global acquisition order"))
    return findings


def check_unordered_iteration(model: dict) -> list[Finding]:
    findings: list[Finding] = []
    for fact in model["functions"]:
        rel = fact["file"]
        scoped = "src/fl/" in rel or "src/tensor/" in rel
        serial = bool(SERIAL_FN_RE.match(fact["name"]))
        if not scoped and not serial:
            continue
        where = ("a serialization function"
                 if serial else "a determinism-scoped path")
        for loop in fact["unordered_fors"]:
            findings.append(Finding(
                "az-unordered-iter", rel, loop["line"],
                f"range-for over `{loop['container']}` in "
                f"{short_name(fact)} ({where}) — hash-iteration order is "
                "implementation-defined; iterate sorted keys or use an "
                "ordered container"))
    return findings


def check_fp_contract(model: dict) -> list[Finding]:
    findings: list[Finding] = []
    for fact in model["functions"]:
        rel = fact["file"]
        if not any(mark in rel for mark in KERNEL_PATH_MARK):
            continue
        if not fact["contractions"]:
            continue
        tu_info = model["tus"].get(fact["tu"], {})
        if tu_info.get("fp_contract_off"):
            continue
        for contraction in fact["contractions"]:
            findings.append(Finding(
                "az-fp-contract", rel, contraction["line"],
                f"contractible float expression in {short_name(fact)} "
                f"but TU {fact['tu']} is compiled without "
                "-ffp-contract=off — FMA contraction breaks the "
                "scalar<->SIMD bit-exactness contract (DESIGN.md §13)"))
    return findings


def check_status_flow(model: dict) -> list[Finding]:
    findings: list[Finding] = []
    for fact in model["functions"]:
        for var in fact["status_vars"]:
            if var["uses"] == 0:
                findings.append(Finding(
                    "az-status-ignored", fact["file"], var["line"],
                    f"`{var['type']} {var['name']}` in "
                    f"{short_name(fact)} is initialized but never read — "
                    "the error vanishes; branch on it, return it, or "
                    "FEDDA_RETURN_IF_ERROR"))
    return findings


def run_checks(model: dict, surface: list[dict]) -> list[Finding]:
    findings: list[Finding] = []
    findings += check_trust_boundary(model, surface)
    findings += check_lock_order(model)
    findings += check_unordered_iteration(model)
    findings += check_fp_contract(model)
    findings += check_status_flow(model)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# -- allowlist (az- namespace of tools/lint_allowlist.txt) ------------------

def apply_allowlist(findings: list[Finding], allowlist: Path,
                    root: Path) -> list[Finding]:
    allow_rel = allowlist.relative_to(root).as_posix() \
        if allowlist.is_relative_to(root) else str(allowlist)
    entries: dict[tuple[str, str], int] = {}
    kept: list[Finding] = []
    if allowlist.is_file():
        for lineno, raw in enumerate(
                allowlist.read_text().splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            head, sep, justification = line.partition("--")
            fields = head.split()
            if len(fields) != 2 or not fields[0].startswith("az-"):
                continue  # lint-owned or malformed; lint_fedda.py checks
            if not sep or not justification.strip():
                kept.append(Finding(
                    "allowlist-missing-justification", allow_rel, lineno,
                    "analyzer allowlist entries are `az-<rule> <path> -- "
                    "<why>`; the justification is not optional"))
                continue
            entries[(fields[0], fields[1])] = lineno
    used: set[tuple[str, str]] = set()
    for finding in findings:
        key = (finding.rule, finding.path)
        if key in entries:
            used.add(key)
        else:
            kept.append(finding)
    for key, lineno in entries.items():
        if key not in used:
            kept.append(Finding(
                "allowlist-unused", allow_rel, lineno,
                f"entry ({key[0]}, {key[1]}) suppresses nothing; delete "
                "it so the allowlist cannot rot"))
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


# -- driver -----------------------------------------------------------------

def analyze(root: Path, model: dict, surface: list[dict],
            allowlist: Path | None) -> list[Finding]:
    findings = run_checks(model, surface)
    if allowlist is None:
        allowlist = root / lint_fedda.ALLOWLIST_NAME
    return apply_allowlist(findings, allowlist, root)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="libclang repo analyzer: trust-boundary aborts, "
                    "lock-order cycles, determinism, status flow")
    parser.add_argument("--root", default=str(
        Path(__file__).resolve().parent.parent.parent))
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json "
                             "(default: <root>/build/)")
    parser.add_argument("--surface", default=None,
                        help="entry-point inventory JSON (default: "
                             "computed via lint_fedda.surface_inventory)")
    parser.add_argument("--allowlist", default=None)
    parser.add_argument("--scope", default="src/",
                        help="only analyze TUs under this root-relative "
                             "prefix (default src/; '' for all)")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write findings as JSON")
    parser.add_argument("--emit-ir", default=None, metavar="OUT",
                        help="dump the extracted IR and exit")
    parser.add_argument("--from-ir", default=None, metavar="PATH",
                        help="skip extraction; run checks over a saved IR")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) instead of skipping when "
                             "libclang or the compdb is missing")
    args = parser.parse_args()
    root = Path(args.root).resolve()

    if args.surface:
        surface = json.loads(Path(args.surface).read_text())
    else:
        surface = lint_fedda.surface_inventory(root)

    extraction_errors: list[str] = []
    if args.from_ir:
        model = json.loads(Path(args.from_ir).read_text())
    else:
        cindex, why = load_cindex()
        if cindex is None:
            print(f"fedda_analyze: SKIPPED — {why} (install clang + "
                  "python3-clang; the CI static-analyze job gates on "
                  "this)")
            return 2 if args.require else 0
        compdb = Path(args.compdb) if args.compdb \
            else root / "build" / "compile_commands.json"
        if not compdb.is_file():
            print(f"fedda_analyze: SKIPPED — no compile database at "
                  f"{compdb} (configure with "
                  "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
            return 2 if args.require else 0
        units = compile_units(compdb, root, args.scope)
        extractor = Extractor(cindex, root)
        model = extractor.run(units)
        extraction_errors = extractor.errors
        for err in extraction_errors:
            print(f"fedda_analyze: warning: {err}", file=sys.stderr)

    if args.emit_ir:
        Path(args.emit_ir).write_text(json.dumps(model, indent=1) + "\n")
        print(f"fedda_analyze: IR written to {args.emit_ir} "
              f"({len(model['functions'])} functions)")
        return 0

    allowlist = Path(args.allowlist) if args.allowlist else None
    findings = analyze(root, model, surface, allowlist)
    if args.json:
        Path(args.json).write_text(json.dumps({
            "findings": [f.as_json() for f in findings],
            "stats": {"functions": len(model["functions"]),
                      "tus": len(model["tus"]),
                      "surface_entries": len(surface),
                      "extraction_errors": extraction_errors},
        }, indent=2) + "\n")
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"fedda_analyze: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"fedda_analyze: clean ({len(model['functions'])} functions, "
          f"{len(model['tus'])} TUs, {len(surface)} surface entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
