#!/usr/bin/env python3
"""Self-test for fedda_analyze.py, in two parts.

Part A (always runs, no libclang needed): the check layer is pure Python
over the JSON IR, so every rule's logic — walk policy, taint/guard
matching, lock-graph cycles, scoping, allowlist namespace — is pinned
against hand-built IR models.

Part B (runs wherever libclang + python3-clang are installed, e.g. the CI
static-analyze and lint jobs; skips cleanly elsewhere): parses the fixture
battery under tests/static/analyze/fixtures/ through the real extraction
layer via a generated miniature compile_commands.json and asserts every
flag_* fixture raises exactly its rule and every pass_* fixture stays
clean. The fixture surface inventory comes from `fedda-analyze-entry`
marker comments inside the fixtures themselves.
"""

from __future__ import annotations

import json
import re
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import fedda_analyze as az  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = REPO_ROOT / "tests" / "static" / "analyze" / "fixtures"

ENTRY_MARKER_RE = re.compile(
    r"//\s*fedda-analyze-entry:\s*(\w+)\s+([\w-]+)")

RULE_OF_DIR = {
    "tb_abort": "az-tb-abort",
    "tb_alloc": "az-tb-alloc",
    "lock_cycle": "az-lock-cycle",
    "unordered": "az-unordered-iter",
    "fp_contract": "az-fp-contract",
    "status_flow": "az-status-ignored",
}


def mkfn(**kwargs) -> dict:
    fact = {
        "usr": kwargs.get("usr", kwargs["name"]),
        "name": kwargs["name"],
        "display": kwargs.get("display", kwargs["name"]),
        "file": kwargs.get("file", "src/net/x.cc"),
        "tu": kwargs.get("tu", kwargs.get("file", "src/net/x.cc")),
        "line": kwargs.get("line", 1),
        "end_line": kwargs.get("end_line", 100),
        "calls": kwargs.get("calls", []),
        "aborts": kwargs.get("aborts", []),
        "locks": kwargs.get("locks", []),
        "lock_pairs": kwargs.get("lock_pairs", []),
        "allocs": kwargs.get("allocs", []),
        "taints": kwargs.get("taints", {}),
        "guards": kwargs.get("guards", []),
        "unordered_fors": kwargs.get("unordered_fors", []),
        "contractions": kwargs.get("contractions", []),
        "status_vars": kwargs.get("status_vars", []),
    }
    return fact


def model_of(*functions, tus=None) -> dict:
    return {"tus": tus or {}, "functions": list(functions)}


def call(name, usr=None, line=1, held=None):
    return {"name": name, "usr": usr or name, "line": line,
            "held": held or []}


SURFACE = [{"name": "DecodeX", "file": "src/net/x.h", "line": 1,
            "kind": "decoder"}]


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TrustWalkTest(unittest.TestCase):
    def test_abort_in_seed_is_flagged_with_chain(self):
        model = model_of(mkfn(
            name="DecodeX", file="src/net/x.cc",
            aborts=[{"line": 5, "macro": "FEDDA_CHECK"}]))
        findings = az.check_trust_boundary(model, SURFACE)
        self.assertEqual(["az-tb-abort"], rules_of(findings))
        self.assertIn("DecodeX", findings[0].message)

    def test_abort_two_hops_down_is_flagged(self):
        model = model_of(
            mkfn(name="DecodeX", file="src/net/x.cc",
                 calls=[call("Helper")]),
            mkfn(name="Helper", file="src/net/y.cc",
                 aborts=[{"line": 9, "macro": "FEDDA_CHECK_EQ"}]))
        findings = az.check_trust_boundary(model, SURFACE)
        self.assertEqual(1, len(findings))
        self.assertEqual("src/net/y.cc", findings[0].path)
        self.assertIn("Helper <- DecodeX", findings[0].message)

    def test_walk_stops_at_boundary_modules(self):
        # Client::Update lives outside the boundary; its CHECK guards
        # in-process state, not wire bytes.
        model = model_of(
            mkfn(name="DecodeX", file="src/net/x.cc",
                 calls=[call("Update")]),
            mkfn(name="Update", file="src/fl/client.cc",
                 aborts=[{"line": 3, "macro": "FEDDA_CHECK"}]))
        self.assertEqual([], az.check_trust_boundary(model, SURFACE))

    def test_unreachable_abort_not_flagged(self):
        model = model_of(
            mkfn(name="DecodeX", file="src/net/x.cc"),
            mkfn(name="ServerSetup", file="src/net/x.cc",
                 aborts=[{"line": 3, "macro": "FEDDA_CHECK"}]))
        self.assertEqual([], az.check_trust_boundary(model, SURFACE))

    def test_byte_entry_kind_seeds_the_walk(self):
        surface = [{"name": "ServeRound", "file": "src/net/t.h",
                    "line": 1, "kind": "byte-entry"}]
        model = model_of(mkfn(
            name="ServeRound", file="src/net/t.cc",
            aborts=[{"line": 2, "macro": "FEDDA_CHECK"}]))
        findings = az.check_trust_boundary(model, surface)
        self.assertEqual(["az-tb-abort"], rules_of(findings))

    def test_surface_stem_pair_is_boundary(self):
        # wire.h on the surface makes wire.cc a boundary module.
        surface = [{"name": "Deserialize", "file": "src/fl/wire.h",
                    "line": 1, "kind": "decoder"}]
        model = model_of(
            mkfn(name="Deserialize", file="src/fl/wire.cc",
                 calls=[call("UnpackBits")]),
            mkfn(name="UnpackBits", file="src/fl/wire.cc",
                 aborts=[{"line": 52, "macro": "FEDDA_CHECK_GE"}]))
        findings = az.check_trust_boundary(model, surface)
        self.assertEqual(1, len(findings))


class TrustAllocTest(unittest.TestCase):
    def alloc_model(self, allocs, taints=None, guards=None):
        return model_of(mkfn(
            name="DecodeX", file="src/net/x.cc", allocs=allocs,
            taints=taints or {}, guards=guards or []))

    def test_direct_read_size_is_flagged(self):
        model = self.alloc_model([{
            "line": 7, "sink": "resize", "paths": [], "direct": True,
            "recv": "out"}])
        self.assertEqual(["az-tb-alloc"],
                         rules_of(az.check_trust_boundary(model, SURFACE)))

    def test_tainted_unguarded_is_flagged(self):
        model = self.alloc_model(
            [{"line": 9, "sink": "reserve", "paths": ["count"],
              "direct": False, "recv": "v"}],
            taints={"count": 5})
        findings = az.check_trust_boundary(model, SURFACE)
        self.assertEqual(["az-tb-alloc"], rules_of(findings))
        self.assertIn("`count`", findings[0].message)

    def test_guard_between_taint_and_alloc_passes(self):
        model = self.alloc_model(
            [{"line": 9, "sink": "reserve", "paths": ["count"],
              "direct": False, "recv": "v"}],
            taints={"count": 5},
            guards=[{"line": 7, "text": "if(count>r.remaining())"}])
        self.assertEqual([], az.check_trust_boundary(model, SURFACE))

    def test_guard_on_other_variable_does_not_count(self):
        model = self.alloc_model(
            [{"line": 9, "sink": "reserve", "paths": ["count"],
              "direct": False, "recv": "v"}],
            taints={"count": 5},
            guards=[{"line": 7, "text": "if(other>r.remaining())"}])
        self.assertEqual(["az-tb-alloc"],
                         rules_of(az.check_trust_boundary(model, SURFACE)))

    def test_guard_before_taint_does_not_count(self):
        model = self.alloc_model(
            [{"line": 9, "sink": "reserve", "paths": ["count"],
              "direct": False, "recv": "v"}],
            taints={"count": 5},
            guards=[{"line": 3, "text": "if(count>0)"}])
        self.assertEqual(["az-tb-alloc"],
                         rules_of(az.check_trust_boundary(model, SURFACE)))


class LockOrderTest(unittest.TestCase):
    def test_ab_ba_cycle_flagged(self):
        model = model_of(
            mkfn(name="First", lock_pairs=[["A", "B", 4]],
                 locks=[{"id": "A", "line": 3}, {"id": "B", "line": 4}]),
            mkfn(name="Second", lock_pairs=[["B", "A", 8]],
                 locks=[{"id": "B", "line": 7}, {"id": "A", "line": 8}]))
        findings = az.check_lock_order(model)
        self.assertEqual(["az-lock-cycle"], rules_of(findings))
        self.assertIn("A", findings[0].message)
        self.assertIn("B", findings[0].message)

    def test_interprocedural_cycle_flagged(self):
        model = model_of(
            mkfn(name="TakeA", locks=[{"id": "A", "line": 2}]),
            mkfn(name="TakeB", locks=[{"id": "B", "line": 2}]),
            mkfn(name="Publish", locks=[{"id": "B", "line": 3}],
                 calls=[call("TakeA", line=4, held=["B"])]),
            mkfn(name="Reindex", locks=[{"id": "A", "line": 3}],
                 calls=[call("TakeB", line=4, held=["A"])]))
        self.assertEqual(["az-lock-cycle"],
                         rules_of(az.check_lock_order(model)))

    def test_transitive_acquires_propagate(self):
        # Publish holds B and calls Mid which calls TakeA: B->A. Reindex
        # holds A, locks B directly: A->B. Cycle through one indirection.
        model = model_of(
            mkfn(name="TakeA", locks=[{"id": "A", "line": 2}]),
            mkfn(name="Mid", calls=[call("TakeA", line=2)]),
            mkfn(name="Publish", locks=[{"id": "B", "line": 3}],
                 calls=[call("Mid", line=4, held=["B"])]),
            mkfn(name="Reindex", lock_pairs=[["A", "B", 5]],
                 locks=[{"id": "A", "line": 4}, {"id": "B", "line": 5}]))
        self.assertEqual(["az-lock-cycle"],
                         rules_of(az.check_lock_order(model)))

    def test_consistent_order_clean(self):
        model = model_of(
            mkfn(name="First", lock_pairs=[["A", "B", 4]],
                 locks=[{"id": "A", "line": 3}, {"id": "B", "line": 4}]),
            mkfn(name="Second", lock_pairs=[["A", "B", 8]],
                 locks=[{"id": "A", "line": 7}, {"id": "B", "line": 8}]))
        self.assertEqual([], az.check_lock_order(model))

    def test_self_deadlock_flagged(self):
        model = model_of(mkfn(
            name="Relock", locks=[{"id": "A", "line": 2}],
            lock_pairs=[["A", "A", 3]]))
        self.assertEqual(["az-lock-cycle"],
                         rules_of(az.check_lock_order(model)))


class UnorderedIterTest(unittest.TestCase):
    def loop(self):
        return [{"line": 4, "container": "std::unordered_map<int, float>"}]

    def test_fl_path_always_scoped(self):
        model = model_of(mkfn(name="Total", file="src/fl/a.cc",
                              unordered_fors=self.loop()))
        self.assertEqual(["az-unordered-iter"],
                         rules_of(az.check_unordered_iteration(model)))

    def test_serialize_function_scoped_anywhere(self):
        model = model_of(mkfn(name="SerializeTable", file="src/obs/a.cc",
                              unordered_fors=self.loop()))
        self.assertEqual(["az-unordered-iter"],
                         rules_of(az.check_unordered_iteration(model)))

    def test_outside_scope_clean(self):
        model = model_of(mkfn(name="CountLarge", file="src/obs/a.cc",
                              unordered_fors=self.loop()))
        self.assertEqual([], az.check_unordered_iteration(model))


class FpContractTest(unittest.TestCase):
    def test_contraction_without_flag_flagged(self):
        model = model_of(
            mkfn(name="Axpy", file="src/tensor/kernels/scalar.cc",
                 tu="src/tensor/kernels/scalar.cc",
                 contractions=[{"line": 25}]),
            tus={"src/tensor/kernels/scalar.cc":
                 {"fp_contract_off": False}})
        self.assertEqual(["az-fp-contract"],
                         rules_of(az.check_fp_contract(model)))

    def test_contraction_with_flag_clean(self):
        model = model_of(
            mkfn(name="Axpy", file="src/tensor/kernels/scalar.cc",
                 tu="src/tensor/kernels/scalar.cc",
                 contractions=[{"line": 25}]),
            tus={"src/tensor/kernels/scalar.cc":
                 {"fp_contract_off": True}})
        self.assertEqual([], az.check_fp_contract(model))

    def test_contraction_outside_kernels_ignored(self):
        model = model_of(
            mkfn(name="Loss", file="src/fl/client.cc",
                 tu="src/fl/client.cc", contractions=[{"line": 9}]),
            tus={"src/fl/client.cc": {"fp_contract_off": False}})
        self.assertEqual([], az.check_fp_contract(model))


class StatusFlowTest(unittest.TestCase):
    def test_never_used_flagged(self):
        model = model_of(mkfn(name="Flush", status_vars=[
            {"name": "st", "line": 4, "type": "Status", "uses": 0}]))
        findings = az.check_status_flow(model)
        self.assertEqual(["az-status-ignored"], rules_of(findings))
        self.assertIn("st", findings[0].message)

    def test_used_clean(self):
        model = model_of(mkfn(name="Flush", status_vars=[
            {"name": "st", "line": 4, "type": "Status", "uses": 2}]))
        self.assertEqual([], az.check_status_flow(model))


class AllowlistTest(unittest.TestCase):
    def apply(self, findings, allow_text):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            allow = root / "allow.txt"
            allow.write_text(allow_text)
            return az.apply_allowlist(findings, allow, root)

    def finding(self):
        return az.Finding("az-tb-abort", "src/fl/wire.cc", 52, "msg")

    def test_entry_suppresses(self):
        kept = self.apply(
            [self.finding()],
            "az-tb-abort src/fl/wire.cc -- callers bound count first\n")
        self.assertEqual([], kept)

    def test_missing_justification_flagged(self):
        kept = self.apply([self.finding()],
                          "az-tb-abort src/fl/wire.cc --\n")
        self.assertEqual(
            sorted(["allowlist-missing-justification", "az-tb-abort"]),
            rules_of(kept))

    def test_unused_az_entry_flagged(self):
        kept = self.apply([], "az-tb-abort src/fl/other.cc -- stale\n")
        self.assertEqual(["allowlist-unused"], rules_of(kept))

    def test_lint_owned_entries_ignored(self):
        kept = self.apply([], "no-throw src/fl/wire.cc -- lint's call\n")
        self.assertEqual([], kept)


def libclang_available() -> bool:
    cindex, _ = az.load_cindex()
    return cindex is not None


@unittest.skipUnless(libclang_available(),
                     "libclang + python3-clang not installed "
                     "(the CI static-analyze job runs this)")
class FixtureBatteryTest(unittest.TestCase):
    """End-to-end: real libclang extraction over the fixture tree."""

    @classmethod
    def setUpClass(cls):
        fixtures = [p for p in sorted(FIXTURES.rglob("*.cc"))]
        compdb = []
        for path in fixtures:
            rel = path.relative_to(FIXTURES).as_posix()
            flags = "-ffp-contract=off " if "pass_with_flag" in rel else ""
            compdb.append({
                "directory": str(FIXTURES),
                "command": f"clang++ -std=c++17 -I{FIXTURES} {flags}"
                           f"-c {rel}",
                "file": rel,
            })
        cls.tmp = tempfile.TemporaryDirectory()
        compdb_path = Path(cls.tmp.name) / "compile_commands.json"
        compdb_path.write_text(json.dumps(compdb))

        surface = []
        for path in fixtures:
            rel = path.relative_to(FIXTURES).as_posix()
            for match in ENTRY_MARKER_RE.finditer(path.read_text()):
                surface.append({"name": match.group(1), "file": rel,
                                "line": 1, "kind": match.group(2)})

        cindex, why = az.load_cindex()
        assert cindex is not None, why
        units = az.compile_units(compdb_path, FIXTURES, scope="")
        extractor = az.Extractor(cindex, FIXTURES)
        model = extractor.run(units)
        assert not extractor.errors, extractor.errors
        cls.model = model
        cls.findings = az.run_checks(model, surface)
        cls.by_path = {}
        for finding in cls.findings:
            cls.by_path.setdefault(finding.path, []).append(finding)

    @classmethod
    def tearDownClass(cls):
        cls.tmp.cleanup()

    def test_every_flag_fixture_raises_its_rule(self):
        for path in sorted(FIXTURES.rglob("flag_*.cc")):
            rel = path.relative_to(FIXTURES).as_posix()
            rule = RULE_OF_DIR[rel.split("/")[0]]
            got = [f.rule for f in self.by_path.get(rel, [])]
            self.assertIn(rule, got,
                          f"{rel}: expected {rule}, got {got or 'nothing'}")

    def test_every_pass_fixture_is_clean(self):
        for path in sorted(FIXTURES.rglob("pass_*.cc")):
            rel = path.relative_to(FIXTURES).as_posix()
            got = [f.render() for f in self.by_path.get(rel, [])]
            self.assertEqual([], got, f"{rel} must be clean")

    def test_flag_fixtures_raise_nothing_unexpected(self):
        expected = set(RULE_OF_DIR.values())
        for finding in self.findings:
            self.assertIn(finding.rule, expected, finding.render())


if __name__ == "__main__":
    unittest.main(verbosity=2)
