#!/usr/bin/env python3
"""Self-test for tools/lint_fedda.py, run as the `lint_selftest` ctest
target.

Every determinism rule gets at least one positive case (a clean tree
passes) and one negative case (a violating fixture is flagged with the
right rule id), plus coverage for the allowlist machinery and the legacy
repo-invariant rules. The fixtures are synthetic trees built in a tempdir,
so the test is independent of the real repo's content.
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import lint_fedda  # noqa: E402


def lint(files: dict[str, str]) -> list[str]:
    """Materializes `files` (relpath -> content) in a fresh root and runs
    every lint rule over it."""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for rel, content in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        return lint_fedda.run(root)


def rules_of(errors: list[str]) -> set[str]:
    out = set()
    for err in errors:
        start = err.index("[") + 1
        out.add(err[start:err.index("]", start)])
    return out


class AmbientEntropyRules(unittest.TestCase):
    def test_random_device_flagged_in_src(self):
        errors = lint({"src/fl/bad.cc": "std::random_device rd;\n"})
        self.assertEqual(rules_of(errors), {"det-random-device"})
        self.assertIn("src/fl/bad.cc:1", errors[0])

    def test_random_device_allowed_in_obs(self):
        self.assertEqual(
            lint({"src/obs/probe.cc": "std::random_device rd;\n"}), [])

    def test_libc_rand_flagged(self):
        errors = lint({"src/tensor/bad.cc": "int x = rand();\n"})
        self.assertEqual(rules_of(errors), {"det-libc-rand"})

    def test_srand_flagged(self):
        errors = lint({"src/core/bad.cc": "srand(42);\n"})
        self.assertEqual(rules_of(errors), {"det-libc-rand"})

    def test_rand_substring_identifiers_pass(self):
        self.assertEqual(
            lint({"src/core/ok.cc": "int grand(); int y = grand();\n"}), [])

    def test_time_seeded_rng_flagged(self):
        errors = lint(
            {"src/fl/bad.cc": "std::mt19937 gen(time(nullptr));\n"})
        self.assertEqual(rules_of(errors), {"det-time-seed"})

    def test_clock_seeded_seed_call_flagged(self):
        errors = lint({
            "src/fl/bad.cc":
                "gen.seed(std::chrono::steady_clock::now());\n"})
        self.assertEqual(rules_of(errors), {"det-time-seed"})

    def test_option_seeded_rng_passes(self):
        self.assertEqual(
            lint({"src/fl/ok.cc": "std::mt19937 gen(options.seed);\n"}), [])

    def test_clock_without_rng_passes(self):
        self.assertEqual(
            lint({"src/core/timer_impl.cc":
                  "auto t = std::chrono::steady_clock::now();\n"}), [])

    def test_thread_id_flagged_in_src(self):
        errors = lint(
            {"src/fl/bad.cc": "auto id = std::this_thread::get_id();\n"})
        self.assertEqual(rules_of(errors), {"det-thread-id"})

    def test_thread_id_allowed_in_obs(self):
        self.assertEqual(
            lint({"src/obs/trace_impl.cc":
                  "auto id = std::this_thread::get_id();\n"}), [])

    def test_mentions_in_comments_and_strings_pass(self):
        self.assertEqual(lint({
            "src/fl/ok.cc":
                "// std::random_device is banned here\n"
                'const char* kMsg = "rand() and time(nullptr)";\n'}), [])


class SimdScopeRule(unittest.TestCase):
    def test_avx2_intrinsic_flagged_outside_kernels(self):
        errors = lint({
            "src/hgn/bad.cc":
                "__m256 v = _mm256_add_ps(a, b);\n"})
        self.assertEqual(rules_of(errors), {"simd-outside-kernels"})
        self.assertIn("src/hgn/bad.cc:1", errors[0])

    def test_sse_intrinsic_flagged_outside_kernels(self):
        errors = lint({
            "src/tensor/ops_bad.cc": "auto v = _mm_mul_ps(a, b);\n"})
        self.assertEqual(rules_of(errors), {"simd-outside-kernels"})

    def test_neon_intrinsic_flagged_outside_kernels(self):
        errors = lint({
            "src/fl/bad.cc": "float32x4_t v = vaddq_f32(a, b);\n"})
        self.assertEqual(rules_of(errors), {"simd-outside-kernels"})

    def test_intrinsic_header_flagged_outside_kernels(self):
        errors = lint({"src/core/bad.cc": "#include <immintrin.h>\n"})
        self.assertEqual(rules_of(errors), {"simd-outside-kernels"})

    def test_intrinsics_allowed_inside_kernels(self):
        self.assertEqual(lint({
            "src/tensor/kernels/avx2_impl.cc":
                "#include <immintrin.h>\n"
                "__m256 v = _mm256_add_ps(a, b);\n"}), [])

    def test_mention_in_comment_passes(self):
        self.assertEqual(lint({
            "src/tensor/ops_ok.cc":
                "// _mm256_fmadd_ps would change rounding; see kernels/\n"
                'const char* kNote = "_mm_add_ps lives in kernels";\n'}), [])

    def test_plain_identifiers_pass(self):
        # Underscored names and vector-ish helpers that are not intrinsic
        # calls must not trip the rule.
        self.assertEqual(lint({
            "src/tensor/ops_ok.cc":
                "int _mm_lookalike = 0; value_f32(x);\n"
                "vadd_helper(a, b);\n"}), [])


class UnorderedIterationRule(unittest.TestCase):
    FL_LOOP = (
        "#include <unordered_map>\n"
        "void Accumulate() {\n"
        "  std::unordered_map<int, double> acc;\n"
        "  for (const auto& kv : acc) { consume(kv); }\n"
        "}\n")

    def test_flagged_in_fl(self):
        errors = lint({"src/fl/bad.cc": self.FL_LOOP})
        self.assertEqual(rules_of(errors), {"det-unordered-iter"})
        self.assertIn("src/fl/bad.cc:4", errors[0])

    def test_flagged_in_tensor(self):
        errors = lint({"src/tensor/bad.cc": self.FL_LOOP})
        self.assertEqual(rules_of(errors), {"det-unordered-iter"})

    def test_ordered_map_passes_in_fl(self):
        self.assertEqual(lint({
            "src/fl/ok.cc":
                "#include <map>\n"
                "void Accumulate() {\n"
                "  std::map<int, double> acc;\n"
                "  for (const auto& kv : acc) { consume(kv); }\n"
                "}\n"}), [])

    def test_unordered_member_iterated_via_this_flagged(self):
        errors = lint({
            "src/fl/bad.cc":
                "#include <unordered_set>\n"
                "struct S {\n"
                "  std::unordered_set<int> keys_;\n"
                "  void Sum() { for (int k : keys_) use(k); }\n"
                "};\n"})
        self.assertEqual(rules_of(errors), {"det-unordered-iter"})

    def test_flagged_inside_serialization_fn_outside_scope_dirs(self):
        errors = lint({
            "src/graph/io.cc":
                "#include <unordered_map>\n"
                "core::Status SaveGraph(Writer* w) {\n"
                "  std::unordered_map<int, int> index;\n"
                "  for (const auto& kv : index) { w->Put(kv); }\n"
                "  return core::Status::OK();\n"
                "}\n"})
        self.assertEqual(rules_of(errors), {"det-unordered-iter"})

    def test_passes_outside_scope_dirs_and_serialization(self):
        self.assertEqual(lint({
            "src/graph/walk.cc":
                "#include <unordered_map>\n"
                "void CollectNeighbors() {\n"
                "  std::unordered_map<int, int> index;\n"
                "  for (const auto& kv : index) { visit(kv); }\n"
                "}\n"}), [])

    def test_serialization_declaration_only_passes(self):
        # A declaration (no body) must not open a bogus span covering the
        # rest of the file.
        self.assertEqual(lint({
            "src/graph/decl.cc":
                "#include <unordered_map>\n"
                "core::Status SaveGraph(Writer* w);\n"
                "void Visit() {\n"
                "  std::unordered_map<int, int> index;\n"
                "  for (const auto& kv : index) { visit(kv); }\n"
                "}\n"}), [])


class FuzzTargetRule(unittest.TestCase):
    HEADER = {
        "src/net/codec.h":
            "#ifndef FEDDA_NET_CODEC_H_\n"
            "#define FEDDA_NET_CODEC_H_\n"
            "core::Status DecodeFoo(const std::vector<uint8_t>& body);\n"
            "#endif  // FEDDA_NET_CODEC_H_\n",
    }
    TARGET = (
        "#include \"net/codec.h\"\n"
        "FEDDA_FUZZ_TARGET(Foo) {\n"
        "  (void)DecodeFoo(std::vector<uint8_t>(data, data + size));\n"
        "}\n")

    def test_unfuzzed_decoder_flagged(self):
        errors = lint(dict(self.HEADER))
        self.assertEqual(rules_of(errors), {"fuzz-target-missing"})
        self.assertIn("src/net/codec.h:3", errors[0])
        self.assertIn("DecodeFoo", errors[0])

    def test_registered_target_satisfies(self):
        files = dict(self.HEADER)
        files["tests/fuzz/fuzz_foo.cc"] = self.TARGET
        files["tests/fuzz/CMakeLists.txt"] = "fedda_add_fuzz_target(foo)\n"
        self.assertEqual(lint(files), [])

    def test_unregistered_target_source_flagged(self):
        files = dict(self.HEADER)
        files["tests/fuzz/fuzz_foo.cc"] = self.TARGET
        files["tests/fuzz/CMakeLists.txt"] = "# nothing registered\n"
        errors = lint(files)
        self.assertEqual(rules_of(errors), {"fuzz-target-missing"})
        # Both the orphan source and the now-uncovered decoder are flagged.
        self.assertTrue(
            any("tests/fuzz/fuzz_foo.cc" in e for e in errors))
        self.assertTrue(any("DecodeFoo" in e for e in errors))

    def test_mention_in_comment_does_not_count(self):
        files = dict(self.HEADER)
        files["tests/fuzz/fuzz_foo.cc"] = (
            "// DecodeFoo is covered elsewhere, honest\n"
            "FEDDA_FUZZ_TARGET(Foo) { (void)data; (void)size; }\n")
        files["tests/fuzz/CMakeLists.txt"] = "fedda_add_fuzz_target(foo)\n"
        errors = lint(files)
        self.assertEqual(rules_of(errors), {"fuzz-target-missing"})
        self.assertIn("DecodeFoo", errors[0])

    def test_surface_is_scoped(self):
        # Decoder-shaped names outside the surface inventory are not held
        # to the rule (e.g. dataset loaders that read trusted local files).
        self.assertEqual(lint({
            "src/data/loader.h":
                "#ifndef FEDDA_DATA_LOADER_H_\n"
                "#define FEDDA_DATA_LOADER_H_\n"
                "void LoadDataset(const std::string& path);\n"
                "#endif  // FEDDA_DATA_LOADER_H_\n"}), [])

    def test_allowlist_can_suppress(self):
        files = dict(self.HEADER)
        files["tools/lint_allowlist.txt"] = (
            "fuzz-target-missing src/net/codec.h -- DecodeFoo is a "
            "fixture in a doc example, not a real decoder\n")
        self.assertEqual(lint(files), [])


class AllowlistMachinery(unittest.TestCase):
    BAD = {"src/fl/bad.cc": "std::random_device rd;\n"}

    def test_justified_entry_suppresses(self):
        files = dict(self.BAD)
        files["tools/lint_allowlist.txt"] = (
            "det-random-device src/fl/bad.cc -- device id salt, "
            "never feeds numerics\n")
        self.assertEqual(lint(files), [])

    def test_entry_without_justification_is_flagged(self):
        files = dict(self.BAD)
        files["tools/lint_allowlist.txt"] = (
            "det-random-device src/fl/bad.cc\n")
        rules = rules_of(lint(files))
        # The entry is malformed, so it also fails to suppress.
        self.assertEqual(
            rules, {"allowlist-missing-justification", "det-random-device"})

    def test_unused_entry_is_flagged(self):
        files = {
            "src/fl/ok.cc": "int x = 0;\n",
            "tools/lint_allowlist.txt":
                "det-random-device src/fl/gone.cc -- was removed\n",
        }
        self.assertEqual(rules_of(lint(files)), {"allowlist-unused"})

    def test_comments_and_blanks_ignored(self):
        files = {
            "src/fl/ok.cc": "int x = 0;\n",
            "tools/lint_allowlist.txt": "# a comment\n\n",
        }
        self.assertEqual(lint(files), [])


class LegacyRepoInvariants(unittest.TestCase):
    def test_throw_flagged(self):
        errors = lint({"src/core/bad.cc": "void F() { throw 1; }\n"})
        self.assertEqual(rules_of(errors), {"no-throw"})

    def test_guard_mismatch_flagged(self):
        errors = lint({
            "src/core/thing.h":
                "#ifndef WRONG_H_\n#define WRONG_H_\n"
                "#endif  // WRONG_H_\n"})
        self.assertEqual(rules_of(errors), {"include-guard"})

    def test_good_guard_passes(self):
        self.assertEqual(lint({
            "src/core/thing.h":
                "#ifndef FEDDA_CORE_THING_H_\n"
                "#define FEDDA_CORE_THING_H_\n"
                "#endif  // FEDDA_CORE_THING_H_\n"}), [])

    def test_unregistered_test_flagged(self):
        errors = lint({
            "tests/CMakeLists.txt": "# nothing registered\n",
            "tests/core/orphan_test.cc": "int main() { return 0; }\n"})
        self.assertEqual(rules_of(errors), {"test-unregistered"})


class SurfaceInventory(unittest.TestCase):
    HEADER = (
        "#ifndef FEDDA_NET_CODEC_H_\n"
        "#define FEDDA_NET_CODEC_H_\n"
        "core::Status DecodeFoo(const std::vector<uint8_t>& body);\n"
        "core::Status ServeBlob(int fd, const std::vector<uint8_t>& raw);\n"
        "void PackBits(const std::vector<uint8_t>& bits);\n"
        "#endif  // FEDDA_NET_CODEC_H_\n")

    def inventory(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            for rel, content in files.items():
                path = root / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content)
            return lint_fedda.surface_inventory(root)

    def test_byte_entry_tier_detected(self):
        entries = {(e["name"], e["kind"])
                   for e in self.inventory({"src/net/codec.h": self.HEADER})}
        self.assertIn(("DecodeFoo", "decoder"), entries)
        self.assertIn(("ServeBlob", "byte-entry"), entries)
        # Takes the byte span but returns void: a producer, not an entry.
        self.assertNotIn(("PackBits", "byte-entry"), entries)

    def test_decoder_kind_wins_dedup(self):
        header = (
            "#ifndef FEDDA_NET_CODEC_H_\n"
            "#define FEDDA_NET_CODEC_H_\n"
            "core::Status DecodeFoo(const std::vector<uint8_t>& body);\n"
            "#endif  // FEDDA_NET_CODEC_H_\n")
        entries = [e for e in self.inventory({"src/net/codec.h": header})
                   if e["name"] == "DecodeFoo"]
        self.assertEqual(1, len(entries))
        self.assertEqual("decoder", entries[0]["kind"])

    def test_byte_entry_not_held_to_fuzz_rule(self):
        header = (
            "#ifndef FEDDA_NET_SERVE_H_\n"
            "#define FEDDA_NET_SERVE_H_\n"
            "core::Status ServeBlob(int fd, const std::vector<uint8_t>& "
            "raw);\n"
            "#endif  // FEDDA_NET_SERVE_H_\n")
        self.assertEqual(lint({"src/net/serve.h": header}), [])


class AnalyzerNamespaceSharing(unittest.TestCase):
    """az-* rows in the shared allowlist belong to fedda_analyze; the lint
    must neither report them unused nor choke on them — except that
    az-unordered-iter doubles as a suppression for the regex rule it
    supersedes."""

    def test_az_entry_not_flagged_unused(self):
        files = {
            "src/fl/ok.cc": "int x = 0;\n",
            "tools/lint_allowlist.txt":
                "az-tb-abort src/fl/wire.cc -- analyzer-owned\n",
        }
        self.assertEqual(lint(files), [])

    def test_az_unordered_entry_suppresses_regex_rule(self):
        files = {
            "src/fl/bad.cc": UnorderedIterationRule.FL_LOOP,
            "tools/lint_allowlist.txt":
                "az-unordered-iter src/fl/bad.cc -- iteration order "
                "proven sorted upstream\n",
        }
        self.assertEqual(lint(files), [])

    def test_ast_supersedes_drops_regex_findings(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            bad = root / "src" / "fl" / "bad.cc"
            bad.parent.mkdir(parents=True)
            bad.write_text(UnorderedIterationRule.FL_LOOP)
            with_regex = lint_fedda.run(root)
            superseded = lint_fedda.run(root, ast_supersedes=True)
        self.assertEqual(rules_of(with_regex), {"det-unordered-iter"})
        self.assertEqual(superseded, [])


if __name__ == "__main__":
    unittest.main()
