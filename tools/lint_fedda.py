#!/usr/bin/env python3
"""Repo-invariant and determinism linter for the fedda tree.

Enforces the contracts the compiler cannot see. Each rule has a stable id
(shown in brackets in every violation) so CI output and the allowlist can
name rules precisely.

Repo invariants:

  no-throw / no-try        `src/` is exception-free. The library's error
                           discipline is Status/Result + CHECK (see
                           src/core/status.h).
  header-using-namespace   No `using namespace` at namespace scope in any
                           header.
  include-guard            Include guards follow FEDDA_<PATH>_H_ and match
                           the file's path.
  test-unregistered        Every `tests/**/*_test.cc` is registered in a
                           CMakeLists.txt.
  fuzz-target-missing      Every decoder on the untrusted-bytes surface
                           (Decode*/Parse*/Deserialize*/Load*/Restore*/
                           ReadFrame declared in src/net/, fl/wire.h,
                           fl/activation.h, graph/graph_io.h,
                           tensor/checkpoint.h, core/flags.h) must be
                           exercised by a registered FEDDA_FUZZ_TARGET
                           under tests/fuzz/. New decoders ship with a
                           fuzz target or not at all (DESIGN.md §12).

Determinism rules (seeded runs must be bit-reproducible — the Table-2/3
goldens and the destination-grouped parallel kernels depend on it; no
sanitizer can catch these, only a static scan can):

  det-random-device        `std::random_device` in src/ outside src/obs/.
                           Ambient entropy breaks seeded reproducibility;
                           derive streams from core::Rng::Split().
  det-libc-rand            `rand()` / `srand()` in src/ outside src/obs/.
                           Hidden global state, not seedable per run.
  det-time-seed            RNG constructed or seeded from a clock in src/
                           outside src/obs/ (e.g. mt19937(time(nullptr))).
  det-thread-id            `std::this_thread::get_id()` in src/ outside
                           src/obs/. Thread identity varies run to run;
                           logic keyed on it diverges under a pool.
  det-unordered-iter       Range-for over a `std::unordered_map`/
                           `std::unordered_set` inside src/fl/, src/tensor/,
                           or any Save/Write/Serialize/Encode function in
                           src/. Hash-iteration order is
                           implementation-defined; accumulation or
                           serialization fed from it is not reproducible.
                           Iterate sorted keys or use an ordered container.

  simd-outside-kernels     Raw SIMD intrinsics (`_mm*`, `vaddq_f32`-style
                           NEON calls) or intrinsic headers (immintrin.h,
                           x86intrin.h, arm_neon.h) in src/ outside
                           src/tensor/kernels/. All vector code lives
                           behind the runtime dispatch layer so the scalar
                           reference, the CPUID gating, and the
                           kernel-equivalence suite stay authoritative
                           (DESIGN.md §13).

Allowlist: tools/lint_allowlist.txt suppresses a (rule, file) pair. Every
entry must carry a justification after `--`; entries without one, and
entries that no longer suppress anything, are themselves violations
(allowlist-missing-justification / allowlist-unused), so the list cannot
rot. The file is shared with tools/analyze/fedda_analyze.py: entries whose
rule id starts with `az-` belong to the AST analyzer — this linter checks
their format but leaves suppression/unused accounting to that tool. One
cross-tool dedup rule: an `az-unordered-iter <path>` entry also suppresses
this linter's regex `det-unordered-iter` findings for the same path, so a
justified unordered iteration needs exactly one allowlist line, not two.

Surface inventory: the untrusted-bytes entry points the fuzz-target rule
scans are exported with --emit-surface as JSON so fedda_analyze.py seeds
its call-graph walk from the same inventory (one source of truth). The
inventory has two tiers: kind "decoder" (name matches the decoder naming
convention; held to fuzz-target-missing) and kind "byte-entry" (a
Status/Result-returning function taking `const std::vector<uint8_t>&` —
a fallible byte consumer that is walk-seeded by the analyzer but not
itself required to have a fuzz target, e.g. RemoteClient::ServeRound).

--ast-supersedes drops det-unordered-iter findings with a notice: the CI
static-analyze job passes it because fedda_analyze.py's az-unordered-iter
AST check supersedes the brittle regex there (the regex stays as the
fallback everywhere libclang is absent).

Exit code 0 when clean, 1 with one line per violation otherwise.

Usage: tools/lint_fedda.py [repo_root] [--emit-surface PATH|-]
                           [--ast-supersedes]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

THROW_RE = re.compile(r"\bthrow\b")
TRY_RE = re.compile(r"\btry\s*\{")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")

RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")
LIBC_RAND_RE = re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\(")
THREAD_ID_RE = re.compile(r"\bthis_thread\s*::\s*get_id\s*\(")
# An RNG being constructed (`mt19937 gen(...)`, `Rng(...)`) or (re)seeded...
RNG_SINK_RE = re.compile(
    r"\b(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux\w*|knuth_b|Rng)\b[^;()]*\(|\.\s*seed\s*\(")
# ...from a wall/steady clock or the C time API on the same line.
TIME_SOURCE_RE = re.compile(
    r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)|\bclock\s*\(\s*\)|"
    r"::\s*now\s*\(\s*\)")

# A function whose name marks a serialization path: unordered iteration
# inside it feeds bytes that golden files compare.
SERIAL_FN_RE = re.compile(r"\b(?:Save|Write|Serialize|Encode)\w*\s*\(")

# Raw vector intrinsics: x86 `_mm_*`/`_mm256_*`/`_mm512_*` calls, NEON
# `v*q_f32`-style calls, or including an intrinsic header directly.
SIMD_DIR = "src/tensor/kernels/"
SIMD_INTRINSIC_RE = re.compile(
    r"\b_mm\d{0,3}_\w+\s*\(|\bv(?:add|sub|mul|mla|fma|ld1|st1|dup|max|min|"
    r"ceq|cgt|cge|bsl)\w*_(?:f|s|u)\d+\w*\s*\(")
SIMD_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](?:immintrin|x86intrin|xmmintrin|emmintrin|'
    r'smmintrin|avxintrin|arm_neon)\.h[>"]')

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(.*?:\s*[&*]?([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*\)")

# The untrusted-bytes surface: directories / headers whose decoder
# declarations the fuzz-target-missing rule inventories. A new parser
# added here (or a new file in src/net/) is held to "fuzzed or flagged".
FUZZ_SURFACE = (
    "src/net",
    "src/fl/wire.h",
    "src/fl/activation.h",
    "src/graph/graph_io.h",
    "src/tensor/checkpoint.h",
    "src/core/flags.h",
)
# A declaration is a decoder when its name says it turns foreign bytes
# into structure. ReadFrame is grandfathered by exact name (the framing
# entry point predates the naming convention).
DECODER_RE = re.compile(
    r"\b((?:Decode|Parse|Deserialize|Load|Restore)[A-Za-z0-9_]*|ReadFrame)"
    r"\s*\(")
# The second surface tier: a fallible byte consumer — a Status/Result
# returning function taking `const std::vector<uint8_t>&`. These take
# foreign bytes without carrying a decoder name (RemoteClient::ServeRound
# is the canonical case), so the analyzer must seed its walk from them;
# they are NOT held to fuzz-target-missing (the decoders they call are).
BYTE_ENTRY_RE = re.compile(
    r"\b(?:core\s*::\s*)?(?:Status|Result\s*<[^;{}]{0,80}>)\s+"
    r"([A-Za-z_]\w*)\s*\([^;{}()]*?const\s+(?:std\s*::\s*)?vector\s*<\s*"
    r"uint8_t\s*>\s*&",
    re.DOTALL)
FUZZ_TARGET_MACRO = "FEDDA_FUZZ_TARGET"
FUZZ_REGISTER_RE = re.compile(r"fedda_add_fuzz_target\(\s*(\w+)\s*\)")

ALLOWLIST_NAME = Path("tools") / "lint_allowlist.txt"


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path      # repo-relative, posix separators
        self.line = line      # 1-based; 0 = whole file
        self.rule = rule
        self.message = message

    def render(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out //, /* */ comments and string/char literals, preserving
    line structure so reported line numbers stay valid."""
    out = []
    i = 0
    n = len(text)
    mode = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = None
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def expected_guard(root: Path, path: Path) -> str:
    rel = path.relative_to(root)
    parts = list(rel.parts)
    # Headers under src/ drop the src/ prefix (they are included as
    # "core/status.h"); bench/ and tests/ keep their directory.
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"FEDDA_{stem}_"


def src_files(root: Path):
    base = root / "src"
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix in (".h", ".cc"):
            yield path


def rel_posix(root: Path, path: Path) -> str:
    return path.relative_to(root).as_posix()


def in_obs(root: Path, path: Path) -> bool:
    return rel_posix(root, path).startswith("src/obs/")


def check_exception_free(root: Path, errors: list[Violation]) -> None:
    for path in src_files(root):
        clean = strip_comments_and_strings(path.read_text())
        rel = rel_posix(root, path)
        for lineno, line in enumerate(clean.splitlines(), 1):
            if THROW_RE.search(line):
                errors.append(Violation(
                    rel, lineno, "no-throw",
                    "`throw` in src/ — the library is exception-free; "
                    "return a Status instead"))
            if TRY_RE.search(line):
                errors.append(Violation(
                    rel, lineno, "no-try",
                    "`try` block in src/ — the library is exception-free; "
                    "nothing here throws"))


def check_headers(root: Path, errors: list[Violation]) -> None:
    header_dirs = [root / "src", root / "bench", root / "tests"]
    for base in header_dirs:
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.h")):
            text = path.read_text()
            clean = strip_comments_and_strings(text)
            rel = rel_posix(root, path)
            for lineno, line in enumerate(clean.splitlines(), 1):
                if USING_NAMESPACE_RE.search(line):
                    errors.append(Violation(
                        rel, lineno, "header-using-namespace",
                        "`using namespace` in a header leaks into every "
                        "includer; qualify names instead"))
            guard = expected_guard(root, path)
            ifndef = re.search(r"#ifndef\s+(\S+)", text)
            define = re.search(r"#define\s+(\S+)", text)
            endif_ok = re.search(r"#endif\s*//\s*" + re.escape(guard), text)
            if not ifndef or ifndef.group(1) != guard:
                got = ifndef.group(1) if ifndef else "<none>"
                errors.append(Violation(
                    rel, 1, "include-guard",
                    f"include guard must be {guard} (got {got})"))
            elif not define or define.group(1) != guard:
                errors.append(Violation(
                    rel, 2, "include-guard",
                    f"#define must repeat the guard {guard}"))
            elif not endif_ok:
                errors.append(Violation(
                    rel, 0, "include-guard",
                    f"closing #endif must carry `// {guard}`"))


def check_tests_registered(root: Path, errors: list[Violation]) -> None:
    tests = root / "tests"
    if not tests.is_dir():
        return
    cmake_text = "\n".join(
        p.read_text() for p in tests.rglob("CMakeLists.txt"))
    for path in sorted(tests.rglob("*_test.cc")):
        rel_to_tests = path.relative_to(tests).as_posix()
        if rel_to_tests not in cmake_text:
            errors.append(Violation(
                rel_posix(root, path), 0, "test-unregistered",
                "not registered in any tests/**/CMakeLists.txt — the file "
                "is never compiled"))


def surface_files(root: Path) -> list[Path]:
    surface: list[Path] = []
    for entry in FUZZ_SURFACE:
        path = root / entry
        if path.is_dir():
            surface.extend(sorted(path.rglob("*.h")))
        elif path.is_file():
            surface.append(path)
    return surface


def surface_inventory(root: Path) -> list[dict]:
    """The untrusted-bytes entry-point inventory: every decoder-named
    declaration on the FUZZ_SURFACE headers (kind "decoder") plus every
    Status/Result-returning function taking a const byte span (kind
    "byte-entry"). One entry per (header, name); a name matching both
    tiers is a decoder. This is the single source of truth shared by the
    fuzz-target-missing rule and fedda_analyze.py's trust-boundary walk
    (--emit-surface serializes it)."""
    entries: list[dict] = []
    for header in surface_files(root):
        clean = strip_comments_and_strings(header.read_text())
        rel = rel_posix(root, header)
        seen: dict[str, dict] = {}
        for lineno, line in enumerate(clean.splitlines(), 1):
            for match in DECODER_RE.finditer(line):
                name = match.group(1)
                if name not in seen:
                    seen[name] = {"name": name, "file": rel,
                                  "line": lineno, "kind": "decoder"}
        for match in BYTE_ENTRY_RE.finditer(clean):
            name = match.group(1)
            if name not in seen:
                lineno = clean.count("\n", 0, match.start(1)) + 1
                seen[name] = {"name": name, "file": rel,
                              "line": lineno, "kind": "byte-entry"}
        entries.extend(seen[name] for name in sorted(seen))
    return entries


def check_fuzz_targets(root: Path, errors: list[Violation]) -> None:
    """fuzz-target-missing: every decoder declared on the untrusted-bytes
    surface must be named in a fuzz-target source that is (a) a
    FEDDA_FUZZ_TARGET and (b) registered via fedda_add_fuzz_target in
    tests/fuzz/CMakeLists.txt. Unregistered target sources are flagged too
    — an unbuilt fuzz target is indistinguishable from no fuzz target."""
    fuzz_dir = root / "tests" / "fuzz"
    cmake = fuzz_dir / "CMakeLists.txt"
    cmake_text = cmake.read_text() if cmake.is_file() else ""
    registered = set(FUZZ_REGISTER_RE.findall(cmake_text))
    covered_text = []
    if fuzz_dir.is_dir():
        for path in sorted(fuzz_dir.glob("*.cc")):
            clean = strip_comments_and_strings(path.read_text())
            if FUZZ_TARGET_MACRO + "(" not in clean:
                continue
            name = path.stem
            name = name[len("fuzz_"):] if name.startswith("fuzz_") else name
            if name not in registered:
                errors.append(Violation(
                    rel_posix(root, path), 0, "fuzz-target-missing",
                    f"fuzz target source is not registered — add "
                    f"fedda_add_fuzz_target({name}) to "
                    "tests/fuzz/CMakeLists.txt; an unbuilt target fuzzes "
                    "nothing"))
                continue
            covered_text.append(clean)
    fuzz_text = "\n".join(covered_text)

    for entry in surface_inventory(root):
        if entry["kind"] != "decoder":
            continue
        name = entry["name"]
        if re.search(rf"\b{re.escape(name)}\b", fuzz_text):
            continue
        errors.append(Violation(
            entry["file"], entry["line"], "fuzz-target-missing",
            f"decoder `{name}` is on the untrusted-bytes surface "
            "but no registered FEDDA_FUZZ_TARGET under tests/fuzz/ "
            "exercises it; every byte parser ships with a fuzz "
            "target (DESIGN.md §12)"))


def check_ambient_entropy(root: Path, errors: list[Violation]) -> None:
    """det-random-device / det-libc-rand / det-time-seed / det-thread-id:
    ambient nondeterminism sources, banned in src/ outside src/obs/ (the
    observability layer may hash thread ids and read clocks — it never
    feeds numerics)."""
    for path in src_files(root):
        if in_obs(root, path):
            continue
        clean = strip_comments_and_strings(path.read_text())
        rel = rel_posix(root, path)
        for lineno, line in enumerate(clean.splitlines(), 1):
            if RANDOM_DEVICE_RE.search(line):
                errors.append(Violation(
                    rel, lineno, "det-random-device",
                    "std::random_device draws ambient entropy; seeded runs "
                    "must derive streams from core::Rng::Split()"))
            if LIBC_RAND_RE.search(line):
                errors.append(Violation(
                    rel, lineno, "det-libc-rand",
                    "rand()/srand() use hidden global state; use core::Rng"))
            if THREAD_ID_RE.search(line):
                errors.append(Violation(
                    rel, lineno, "det-thread-id",
                    "std::this_thread::get_id() varies run to run; logic "
                    "keyed on thread identity diverges under a pool"))
            if RNG_SINK_RE.search(line) and TIME_SOURCE_RE.search(line):
                errors.append(Violation(
                    rel, lineno, "det-time-seed",
                    "RNG seeded from a clock; take the seed from options "
                    "so runs are reproducible"))


def unordered_container_names(clean: str) -> set[str]:
    """Identifiers declared in this file with std::unordered_map/set type.
    Angle brackets are matched by depth so nested template args don't
    confuse the scan."""
    names: set[str] = set()
    for match in re.finditer(r"\bunordered_(?:map|set)\s*<", clean):
        depth = 1
        i = match.end()
        while i < len(clean) and depth > 0:
            if clean[i] == "<":
                depth += 1
            elif clean[i] == ">":
                depth -= 1
            i += 1
        ident = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*[;={(,)]", clean[i:])
        if ident:
            names.add(ident.group(1))
    return names


def serialization_spans(clean: str) -> list[tuple[int, int]]:
    """(start_line, end_line) 1-based inclusive spans of function bodies
    whose name matches Save/Write/Serialize/Encode. Declarations (`;`
    before `{`) are skipped."""
    spans: list[tuple[int, int]] = []
    for match in SERIAL_FN_RE.finditer(clean):
        i = match.end() - 1  # at the '('
        depth = 0
        # Walk past the parameter list.
        while i < len(clean):
            if clean[i] == "(":
                depth += 1
            elif clean[i] == ")":
                depth -= 1
                if depth == 0:
                    i += 1
                    break
            i += 1
        # A body must open before any ';' (otherwise it's a declaration or
        # a plain call).
        while i < len(clean) and clean[i] not in ";{":
            i += 1
        if i >= len(clean) or clean[i] == ";":
            continue
        start_line = clean.count("\n", 0, i) + 1
        depth = 0
        while i < len(clean):
            if clean[i] == "{":
                depth += 1
            elif clean[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        end_line = clean.count("\n", 0, i) + 1
        spans.append((start_line, end_line))
    return spans


def check_simd_scope(root: Path, errors: list[Violation]) -> None:
    """simd-outside-kernels: raw vector intrinsics are confined to
    src/tensor/kernels/, the one layer with a scalar reference, CPUID
    gating, and bit-exactness tests. Comments and strings are stripped
    first, so *mentioning* an intrinsic is fine; calling one is not."""
    for path in src_files(root):
        rel = rel_posix(root, path)
        if rel.startswith(SIMD_DIR):
            continue
        clean = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(clean.splitlines(), 1):
            if SIMD_INTRINSIC_RE.search(line):
                errors.append(Violation(
                    rel, lineno, "simd-outside-kernels",
                    "raw SIMD intrinsic outside src/tensor/kernels/ — "
                    "vector code must go through the dispatched kernel "
                    "layer so the scalar path and equivalence tests stay "
                    "authoritative (DESIGN.md §13)"))
            if SIMD_INCLUDE_RE.search(line):
                errors.append(Violation(
                    rel, lineno, "simd-outside-kernels",
                    "intrinsic header included outside src/tensor/kernels/ "
                    "— only the kernel layer may use vector intrinsics "
                    "(DESIGN.md §13)"))


def check_unordered_iteration(root: Path, errors: list[Violation]) -> None:
    """det-unordered-iter: range-for over an unordered container where the
    iteration order can reach numerics or serialized bytes."""
    for path in src_files(root):
        rel = rel_posix(root, path)
        always_scoped = rel.startswith("src/fl/") or rel.startswith(
            "src/tensor/")
        clean = strip_comments_and_strings(path.read_text())
        names = unordered_container_names(clean)
        if not names:
            continue
        spans = None if always_scoped else serialization_spans(clean)
        for lineno, line in enumerate(clean.splitlines(), 1):
            for loop in RANGE_FOR_RE.finditer(line):
                leaf = re.split(r"\.|->", loop.group(1))[-1]
                if leaf not in names:
                    continue
                if not always_scoped and not any(
                        lo <= lineno <= hi for lo, hi in spans):
                    continue
                errors.append(Violation(
                    rel, lineno, "det-unordered-iter",
                    f"range-for over unordered container `{leaf}` — "
                    "hash-iteration order is implementation-defined; "
                    "iterate sorted keys or use an ordered container"))


def apply_allowlist(root: Path, allowlist: Path,
                    errors: list[Violation]) -> list[Violation]:
    """Filters out violations covered by allowlist entries. Entry format:
    `<rule-id> <path> -- <justification>`; `#` starts a comment. Entries
    missing a justification or matching nothing become violations."""
    allow_rel = allowlist.relative_to(root).as_posix() \
        if allowlist.is_relative_to(root) else str(allowlist)
    entries: dict[tuple[str, str], int] = {}  # (rule, path) -> lineno
    kept: list[Violation] = []
    if allowlist.is_file():
        for lineno, raw in enumerate(allowlist.read_text().splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            head, sep, justification = line.partition("--")
            fields = head.split()
            if len(fields) != 2 or not sep or not justification.strip():
                kept.append(Violation(
                    allow_rel, lineno, "allowlist-missing-justification",
                    "allowlist entries are `<rule-id> <path> -- <why>`; "
                    "the justification is not optional"))
                continue
            entries[(fields[0], fields[1])] = lineno
    used: set[tuple[str, str]] = set()
    for violation in errors:
        key = (violation.rule, violation.path)
        ast_key = ("az-unordered-iter", violation.path)
        if key in entries:
            used.add(key)
        elif violation.rule == "det-unordered-iter" and ast_key in entries:
            # Cross-tool dedup: the AST analyzer's az-unordered-iter entry
            # covers the regex finding for the same path, so one justified
            # allowlist line silences both tools.
            used.add(ast_key)
        else:
            kept.append(violation)
    for key, lineno in entries.items():
        if key in used:
            continue
        if key[0].startswith("az-"):
            # Analyzer-owned entry: fedda_analyze.py does the unused
            # accounting for its own namespace (this linter cannot know
            # what the AST checks match).
            continue
        kept.append(Violation(
            allow_rel, lineno, "allowlist-unused",
            f"entry ({key[0]}, {key[1]}) suppresses nothing; "
            "delete it so the allowlist cannot rot"))
    return kept


def run(root: Path, allowlist: Path | None = None,
        ast_supersedes: bool = False) -> list[str]:
    """Runs every rule over `root`; returns rendered violations. With
    `ast_supersedes`, det-unordered-iter findings are dropped after
    allowlist accounting (the AST analyzer's az-unordered-iter check is
    the authority in that configuration)."""
    errors: list[Violation] = []
    check_exception_free(root, errors)
    check_headers(root, errors)
    check_tests_registered(root, errors)
    check_fuzz_targets(root, errors)
    check_ambient_entropy(root, errors)
    check_simd_scope(root, errors)
    check_unordered_iteration(root, errors)
    if allowlist is None:
        allowlist = root / ALLOWLIST_NAME
    errors = apply_allowlist(root, allowlist, errors)
    if ast_supersedes:
        errors = [v for v in errors if v.rule != "det-unordered-iter"]
    errors.sort(key=lambda v: (v.path, v.line, v.rule))
    return [v.render() for v in errors]


def main() -> int:
    parser = argparse.ArgumentParser(
        description="fedda repo-invariant and determinism linter")
    parser.add_argument(
        "root", nargs="?",
        default=str(Path(__file__).resolve().parent.parent),
        help="repo root (default: the tree containing this script)")
    parser.add_argument(
        "--emit-surface", metavar="PATH",
        help="write the untrusted-bytes entry-point inventory as JSON to "
             "PATH ('-' for stdout) and exit without linting")
    parser.add_argument(
        "--ast-supersedes", action="store_true",
        help="drop det-unordered-iter findings: fedda_analyze.py's "
             "az-unordered-iter AST check is running and supersedes the "
             "regex")
    args = parser.parse_args()
    root = Path(args.root)
    if args.emit_surface:
        payload = json.dumps(surface_inventory(root), indent=2) + "\n"
        if args.emit_surface == "-":
            sys.stdout.write(payload)
        else:
            Path(args.emit_surface).write_text(payload)
        return 0
    errors = run(root, ast_supersedes=args.ast_supersedes)
    for err in errors:
        print(err)
    if args.ast_supersedes:
        print("lint_fedda: det-unordered-iter superseded by "
              "az-unordered-iter (AST)")
    if errors:
        print(f"lint_fedda: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("lint_fedda: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
