#!/usr/bin/env python3
"""Repo-invariant linter for the fedda tree.

Enforces the contracts the compiler cannot see:

  1. `src/` is exception-free: no `throw` statements or `try` blocks. The
     library's error discipline is Status/Result + CHECK (see
     src/core/status.h); an exception anywhere in src/ breaks the contract
     every caller relies on.
  2. No `using namespace` at namespace scope in any header: headers are
     included everywhere and would leak the alias into every TU.
  3. Include guards follow the FEDDA_<PATH>_H_ convention and match the
     file's path, so guards can never collide.
  4. Every `tests/**/*_test.cc` is registered in a CMakeLists.txt: a test
     file that exists but is not compiled is a silent coverage hole.

Exit code 0 when clean, 1 with one line per violation otherwise.

Usage: tools/lint_fedda.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# `throw` as a statement. Allowed to appear in comments/strings — those are
# stripped first — and nowhere else. `try` must be the keyword (start of a
# block), not a substring of an identifier.
THROW_RE = re.compile(r"\bthrow\b")
TRY_RE = re.compile(r"\btry\s*\{")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out //, /* */ comments and string/char literals, preserving
    line structure so reported line numbers stay valid."""
    out = []
    i = 0
    n = len(text)
    mode = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = None
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def expected_guard(root: Path, path: Path) -> str:
    rel = path.relative_to(root)
    parts = list(rel.parts)
    # Headers under src/ drop the src/ prefix (they are included as
    # "core/status.h"); bench/ and tests/ keep their directory.
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"FEDDA_{stem}_"


def check_exception_free(root: Path, errors: list[str]) -> None:
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        clean = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(clean.splitlines(), 1):
            if THROW_RE.search(line):
                errors.append(
                    f"{path.relative_to(root)}:{lineno}: `throw` in src/ — "
                    "the library is exception-free; return a Status instead")
            if TRY_RE.search(line):
                errors.append(
                    f"{path.relative_to(root)}:{lineno}: `try` block in src/ "
                    "— the library is exception-free; nothing here throws")


def check_headers(root: Path, errors: list[str]) -> None:
    header_dirs = [root / "src", root / "bench", root / "tests"]
    for base in header_dirs:
        for path in sorted(base.rglob("*.h")):
            text = path.read_text()
            clean = strip_comments_and_strings(text)
            rel = path.relative_to(root)
            for lineno, line in enumerate(clean.splitlines(), 1):
                if USING_NAMESPACE_RE.search(line):
                    errors.append(
                        f"{rel}:{lineno}: `using namespace` in a header "
                        "leaks into every includer; qualify names instead")
            guard = expected_guard(root, path)
            ifndef = re.search(r"#ifndef\s+(\S+)", text)
            define = re.search(r"#define\s+(\S+)", text)
            endif_ok = re.search(
                r"#endif\s*//\s*" + re.escape(guard), text)
            if not ifndef or ifndef.group(1) != guard:
                got = ifndef.group(1) if ifndef else "<none>"
                errors.append(
                    f"{rel}:1: include guard must be {guard} (got {got})")
            elif not define or define.group(1) != guard:
                errors.append(
                    f"{rel}:2: #define must repeat the guard {guard}")
            elif not endif_ok:
                errors.append(
                    f"{rel}: closing #endif must carry `// {guard}`")


def check_tests_registered(root: Path, errors: list[str]) -> None:
    cmake_text = "\n".join(
        p.read_text() for p in (root / "tests").rglob("CMakeLists.txt"))
    for path in sorted((root / "tests").rglob("*_test.cc")):
        rel_to_tests = path.relative_to(root / "tests").as_posix()
        if rel_to_tests not in cmake_text:
            errors.append(
                f"{path.relative_to(root)}: not registered in any "
                "tests/**/CMakeLists.txt — the file is never compiled")


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    errors: list[str] = []
    check_exception_free(root, errors)
    check_headers(root, errors)
    check_tests_registered(root, errors)
    for err in errors:
        print(err)
    if errors:
        print(f"lint_fedda: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("lint_fedda: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
